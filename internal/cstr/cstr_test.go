package cstr

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTerminateAndGoString(t *testing.T) {
	buf := Terminate("hello")
	if len(buf) != 6 || buf[5] != 0 {
		t.Fatalf("Terminate: got %v", buf)
	}
	if got := GoString(buf, 0); got != "hello" {
		t.Fatalf("GoString = %q", got)
	}
	if got := GoString(buf, 2); got != "llo" {
		t.Fatalf("GoString from 2 = %q", got)
	}
}

func TestStrlen(t *testing.T) {
	cases := []struct {
		s    string
		from int
		want int
	}{
		{"", 0, 0},
		{"a", 0, 1},
		{"abc", 0, 3},
		{"abc", 1, 2},
		{"abc", 3, 0},
	}
	for _, c := range cases {
		if got := Strlen(Terminate(c.s), c.from); got != c.want {
			t.Errorf("Strlen(%q, %d) = %d, want %d", c.s, c.from, got, c.want)
		}
	}
}

func TestStrlenEmbeddedNul(t *testing.T) {
	buf := []byte{'a', 0, 'b', 0}
	if got := Strlen(buf, 0); got != 1 {
		t.Fatalf("Strlen with embedded NUL = %d, want 1", got)
	}
	if got := Strlen(buf, 2); got != 1 {
		t.Fatalf("Strlen past embedded NUL = %d, want 1", got)
	}
}

func TestStrlenUnterminatedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unterminated buffer")
		}
	}()
	Strlen([]byte{'a', 'b'}, 0)
}

func TestStrchr(t *testing.T) {
	buf := Terminate("hello world")
	if got := Strchr(buf, 0, 'o'); got != 4 {
		t.Errorf("Strchr o = %d", got)
	}
	if got := Strchr(buf, 5, 'o'); got != 7 {
		t.Errorf("Strchr o from 5 = %d", got)
	}
	if got := Strchr(buf, 0, 'z'); got != NotFound {
		t.Errorf("Strchr z = %d", got)
	}
	// C semantics: searching for NUL finds the terminator.
	if got := Strchr(buf, 0, 0); got != 11 {
		t.Errorf("Strchr NUL = %d", got)
	}
}

func TestStrrchr(t *testing.T) {
	buf := Terminate("hello world")
	if got := Strrchr(buf, 0, 'o'); got != 7 {
		t.Errorf("Strrchr o = %d", got)
	}
	if got := Strrchr(buf, 0, 'h'); got != 0 {
		t.Errorf("Strrchr h = %d", got)
	}
	if got := Strrchr(buf, 0, 'z'); got != NotFound {
		t.Errorf("Strrchr z = %d", got)
	}
	if got := Strrchr(buf, 0, 0); got != 11 {
		t.Errorf("Strrchr NUL = %d", got)
	}
}

func TestStrspnStrcspn(t *testing.T) {
	buf := Terminate("  \t hi")
	if got := Strspn(buf, 0, []byte(" \t")); got != 4 {
		t.Errorf("Strspn ws = %d", got)
	}
	if got := Strcspn(buf, 0, []byte("h")); got != 4 {
		t.Errorf("Strcspn h = %d", got)
	}
	if got := Strspn(buf, 0, []byte("xyz")); got != 0 {
		t.Errorf("Strspn none = %d", got)
	}
	if got := Strcspn(buf, 0, []byte("xyz")); got != 6 {
		t.Errorf("Strcspn none = %d", got)
	}
	if got := Strspn(Terminate(""), 0, []byte("a")); got != 0 {
		t.Errorf("Strspn empty = %d", got)
	}
}

func TestStrpbrk(t *testing.T) {
	buf := Terminate("abcdef")
	if got := Strpbrk(buf, 0, []byte("fd")); got != 3 {
		t.Errorf("Strpbrk = %d", got)
	}
	if got := Strpbrk(buf, 0, []byte("xyz")); got != NotFound {
		t.Errorf("Strpbrk miss = %d", got)
	}
}

func TestRawmemchr(t *testing.T) {
	buf := Terminate("abc")
	if got := Rawmemchr(buf, 0, 'c'); got != 2 {
		t.Errorf("Rawmemchr = %d", got)
	}
	if got := Rawmemchr(buf, 0, 0); got != 3 {
		t.Errorf("Rawmemchr NUL = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic reading past buffer")
		}
	}()
	Rawmemchr(buf, 0, 'z')
}

func TestMemchr(t *testing.T) {
	buf := []byte("abca")
	if got := Memchr(buf, 1, 'a', 3); got != 3 {
		t.Errorf("Memchr = %d", got)
	}
	if got := Memchr(buf, 0, 'z', 4); got != NotFound {
		t.Errorf("Memchr miss = %d", got)
	}
	if got := Memchr(buf, 0, 'c', 2); got != NotFound {
		t.Errorf("Memchr bounded = %d", got)
	}
}

func TestReverse(t *testing.T) {
	rev := Reverse(Terminate("abc"), 0)
	if GoString(rev, 0) != "cba" {
		t.Fatalf("Reverse = %q", GoString(rev, 0))
	}
	rev = Reverse(Terminate(""), 0)
	if GoString(rev, 0) != "" {
		t.Fatalf("Reverse empty = %q", GoString(rev, 0))
	}
}

// sanitize maps arbitrary quick-generated strings into NUL-free ASCII so they
// form valid C string contents.
func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		b := byte(r%95) + 32 // printable ASCII
		sb.WriteByte(b)
	}
	return sb.String()
}

func TestStrchrAgainstIndexProperty(t *testing.T) {
	f := func(raw string, c byte) bool {
		s := sanitize(raw)
		if c == 0 {
			c = 'x'
		}
		got := Strchr(Terminate(s), 0, c)
		want := strings.IndexByte(s, c)
		if want == -1 {
			return got == NotFound
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStrrchrAgainstLastIndexProperty(t *testing.T) {
	f := func(raw string, c byte) bool {
		s := sanitize(raw)
		if c == 0 {
			c = 'x'
		}
		got := Strrchr(Terminate(s), 0, c)
		want := strings.LastIndexByte(s, c)
		if want == -1 {
			return got == NotFound
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpnCspnPartitionProperty(t *testing.T) {
	// For any charset, strspn + strcspn over complementary sets partition the
	// string: strspn(s, cs) counts in-set prefix, strcspn counts out-of-set
	// prefix; at least one of them must be 0, and both are <= len.
	f := func(raw, csRaw string) bool {
		s, cs := sanitize(raw), sanitize(csRaw)
		buf := Terminate(s)
		sp := Strspn(buf, 0, []byte(cs))
		csp := Strcspn(buf, 0, []byte(cs))
		if sp < 0 || sp > len(s) || csp < 0 || csp > len(s) {
			return false
		}
		return sp == 0 || csp == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStrpbrkStrcspnAgreeProperty(t *testing.T) {
	// strpbrk(s, cs) == s + strcspn(s, cs) when a match exists, per ISO C.
	f := func(raw, csRaw string) bool {
		s, cs := sanitize(raw), sanitize(csRaw)
		buf := Terminate(s)
		p := Strpbrk(buf, 0, []byte(cs))
		csp := Strcspn(buf, 0, []byte(cs))
		if p == NotFound {
			return csp == len(s)
		}
		return p == csp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReverseInvolutionProperty(t *testing.T) {
	f := func(raw string) bool {
		s := sanitize(raw)
		twice := Reverse(Reverse(Terminate(s), 0), 0)
		return GoString(twice, 0) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMetaCharacterClasses(t *testing.T) {
	for c := 0; c < 256; c++ {
		wantDigit := c >= '0' && c <= '9'
		if IsDigit(byte(c)) != wantDigit {
			t.Fatalf("IsDigit(%d) wrong", c)
		}
		wantSpace := c == ' ' || c == '\t' || c == '\n'
		if IsSpace(byte(c)) != wantSpace {
			t.Fatalf("IsSpace(%d) wrong", c)
		}
	}
}

// ---- Edge cases the differential fuzzer (internal/diffuzz) relies on when
// it uses this package, via the vocab interpreter, as one of its oracles. ----

func TestStrchrNulFindsTerminator(t *testing.T) {
	// ISO C: strchr(s, 0) points at the terminator, never NULL.
	buf := Terminate("abc")
	if got := Strchr(buf, 0, 0); got != 3 {
		t.Errorf("Strchr(%q, 0, 0) = %d, want 3", buf, got)
	}
	if got := Strchr(buf, 2, 0); got != 3 {
		t.Errorf("Strchr(%q, 2, 0) = %d, want 3", buf, got)
	}
	if got := Strchr(Terminate(""), 0, 0); got != 0 {
		t.Errorf("Strchr on empty string with c=0: got %d, want 0", got)
	}
}

func TestStrrchrNulFindsTerminator(t *testing.T) {
	buf := Terminate("aba")
	if got := Strrchr(buf, 0, 0); got != 3 {
		t.Errorf("Strrchr(%q, 0, 0) = %d, want 3", buf, got)
	}
	if got := Strrchr(Terminate(""), 0, 0); got != 0 {
		t.Errorf("Strrchr on empty string with c=0: got %d, want 0", got)
	}
	// And a normal last-occurrence lookup from a non-zero offset.
	if got := Strrchr(buf, 1, 'a'); got != 2 {
		t.Errorf("Strrchr(%q, 1, 'a') = %d, want 2", buf, got)
	}
}

func TestEmptySets(t *testing.T) {
	buf := Terminate("abc")
	if got := Strspn(buf, 0, nil); got != 0 {
		t.Errorf("Strspn with empty set = %d, want 0", got)
	}
	if got := Strcspn(buf, 0, nil); got != 3 {
		t.Errorf("Strcspn with empty set = %d, want 3 (whole string)", got)
	}
	if got := Strpbrk(buf, 0, nil); got != NotFound {
		t.Errorf("Strpbrk with empty set = %d, want NotFound", got)
	}
	if MatchSet('a', nil) {
		t.Error("MatchSet with empty set matched")
	}
}

func TestFromAtTerminator(t *testing.T) {
	// All functions applied to the empty suffix starting exactly at the NUL.
	buf := Terminate("ab") // terminator at offset 2
	from := 2
	if got := Strlen(buf, from); got != 0 {
		t.Errorf("Strlen at terminator = %d", got)
	}
	if got := Strchr(buf, from, 'a'); got != NotFound {
		t.Errorf("Strchr at terminator = %d, want NotFound", got)
	}
	if got := Strrchr(buf, from, 'a'); got != NotFound {
		t.Errorf("Strrchr at terminator = %d, want NotFound", got)
	}
	if got := Strspn(buf, from, []byte("ab")); got != 0 {
		t.Errorf("Strspn at terminator = %d", got)
	}
	if got := Strcspn(buf, from, []byte("xy")); got != 0 {
		t.Errorf("Strcspn at terminator = %d", got)
	}
	if got := Strpbrk(buf, from, []byte("ab")); got != NotFound {
		t.Errorf("Strpbrk at terminator = %d, want NotFound", got)
	}
	if got := GoString(buf, from); got != "" {
		t.Errorf("GoString at terminator = %q", got)
	}
	// Memchr with n=0 never finds anything, even at a live offset.
	if got := Memchr(buf, 0, 'a', 0); got != NotFound {
		t.Errorf("Memchr with n=0 = %d, want NotFound", got)
	}
}
