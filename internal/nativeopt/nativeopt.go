// Package nativeopt is the harness for §4.4: does replacing a custom string
// loop with its summary speed up native execution? The original loop runs as
// its byte-at-a-time Go transliteration (loopdb.Loop.Ref); the summary runs
// through vocab.CompileGo, whose character sets are precomputed lookup
// tables and whose scans use the standard library's assembly-backed byte
// search — the stand-in for glibc's SIMD string routines (DESIGN.md §3).
package nativeopt

import (
	"fmt"
	"time"

	"stringloops/internal/vocab"
)

// Workload is the §4.4 input set: four strings of about twenty characters.
// The paper stresses that string choice dominates the outcome; this mirrors
// its setup without claiming representativeness.
func Workload() [][]byte {
	mk := func(s string) []byte { return append([]byte(s), 0) }
	return [][]byte{
		mk("   \t  indented line"),
		mk("key=value;other=next"),
		mk("/usr/local/bin/tool"),
		mk("12345 trailing text "),
	}
}

// Comparison reports one loop's native timing.
type Comparison struct {
	Name      string
	Original  time.Duration // total for Iterations runs over the workload
	Summary   time.Duration
	Speedup   float64 // >1 means the summary is faster
	Agreement bool    // both sides computed identical results
}

// Compare times original (the loop transliteration) against the compiled
// summary on the workload.
func Compare(name string, original func([]byte) vocab.Result, summary vocab.Program, workload [][]byte, iterations int) (Comparison, error) {
	compiled := vocab.CompileGo(summary)
	c := Comparison{Name: name, Agreement: true}
	// Correctness first: both sides must agree on the workload.
	for _, w := range workload {
		if original(w) != compiled(w) {
			c.Agreement = false
			return c, fmt.Errorf("nativeopt: %s: summary disagrees with loop on %q", name, w)
		}
	}
	// Interleave the two sides across several rounds and keep each side's
	// best round: robust against frequency scaling and noisy neighbours.
	const rounds = 5
	perRound := iterations / rounds
	if perRound == 0 {
		perRound = 1
	}
	var sink vocab.Result
	run := func(f func([]byte) vocab.Result) time.Duration {
		start := time.Now()
		for i := 0; i < perRound; i++ {
			for _, w := range workload {
				sink = f(w)
			}
		}
		return time.Since(start)
	}
	best := func(cur, d time.Duration) time.Duration {
		if cur == 0 || d < cur {
			return d
		}
		return cur
	}
	// Warm both sides once before measuring.
	run(original)
	run(compiled)
	for r := 0; r < rounds; r++ {
		c.Original = best(c.Original, run(original))
		c.Summary = best(c.Summary, run(compiled))
	}
	_ = sink
	c.Original *= rounds
	c.Summary *= rounds
	if c.Summary > 0 {
		c.Speedup = float64(c.Original) / float64(c.Summary)
	}
	return c, nil
}
