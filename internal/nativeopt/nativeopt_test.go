package nativeopt

import (
	"testing"

	"stringloops/internal/loopdb"
	"stringloops/internal/vocab"
)

func TestWorkloadShape(t *testing.T) {
	w := Workload()
	if len(w) != 4 {
		t.Fatalf("workload has %d strings, want 4 (§4.4)", len(w))
	}
	for _, s := range w {
		if s[len(s)-1] != 0 {
			t.Fatal("workload strings must be NUL-terminated")
		}
		if n := len(s) - 1; n < 15 || n > 25 {
			t.Fatalf("workload string length %d; the paper uses ~20", n)
		}
	}
}

func TestCompareAgreementAndTiming(t *testing.T) {
	// Whitespace skip: transliteration vs compiled P \t F summary.
	corpus := loopdb.Corpus()
	var loop loopdb.Loop
	for _, l := range corpus {
		if l.Name == "bash/skip_ws_pair" {
			loop = l
		}
	}
	if loop.Ref == nil {
		t.Fatal("corpus loop not found")
	}
	prog, err := vocab.Decode(loop.WantProgram)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compare(loop.Name, loop.Ref, prog, Workload(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Agreement {
		t.Fatal("summary must agree with the loop")
	}
	if c.Original <= 0 || c.Summary <= 0 || c.Speedup <= 0 {
		t.Fatalf("timings not recorded: %+v", c)
	}
}

func TestCompareDetectsDisagreement(t *testing.T) {
	ref := func(buf []byte) vocab.Result { return vocab.PtrResult(0) }
	wrong, _ := vocab.Decode("EF")
	if _, err := Compare("bogus", ref, wrong, Workload(), 10); err == nil {
		t.Fatal("disagreement must be reported")
	}
}

func TestCompareAllSynthesizedCorpusLoops(t *testing.T) {
	// Every curated loop with a known summary must agree with its
	// transliteration on the workload (a broad §4.4 correctness sweep).
	for _, l := range loopdb.Corpus() {
		if l.WantProgram == "" {
			continue
		}
		prog, err := vocab.Decode(l.WantProgram)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if _, err := Compare(l.Name, l.Ref, prog, Workload(), 1); err != nil {
			t.Errorf("%v", err)
		}
	}
}
