package core

import (
	"context"
	"testing"

	"stringloops/internal/cir"
	"stringloops/internal/engine"
	"stringloops/internal/loopdb"
	"stringloops/internal/memoryless"
)

// These tests pin the state-merging executor to the enumerating one across
// the whole curated corpus: the two are different schedules of the same
// semantics, so every verdict that flows out of symbolic execution must be
// identical, and every covering input either mode generates must replay
// correctly on the concrete interpreter.

// TestMergeCorpusVerdictsAgree runs the §3 memorylessness verification over
// all 115 corpus loops with and without state merging and requires
// bit-identical verdicts: same memoryless bool, same direction, same
// error classification.
func TestMergeCorpusVerdictsAgree(t *testing.T) {
	for _, l := range loopdb.Corpus() {
		l := l
		t.Run(l.Name, func(t *testing.T) {
			f, err := l.Lower()
			if err != nil {
				t.Fatalf("lower: %v", err)
			}
			enum := memoryless.VerifyWith(f, memoryless.VerifyOptions{MaxLen: 3})
			// Re-lower: verification mutates nothing, but a fresh Func keeps
			// the two runs fully independent.
			f2, err := l.Lower()
			if err != nil {
				t.Fatalf("re-lower: %v", err)
			}
			merged := memoryless.VerifyWith(f2, memoryless.VerifyOptions{MaxLen: 3, Merge: true})

			if enum.Memoryless != merged.Memoryless {
				t.Fatalf("verdicts differ: enumerated memoryless=%v (%q), merged memoryless=%v (%q)",
					enum.Memoryless, enum.Reason, merged.Memoryless, merged.Reason)
			}
			if (enum.Err == nil) != (merged.Err == nil) {
				t.Fatalf("error classification differs: enumerated err=%v, merged err=%v", enum.Err, merged.Err)
			}
			if enum.Memoryless && enum.Spec.Dir != merged.Spec.Dir {
				t.Fatalf("directions differ: enumerated %s, merged %s", enum.Spec.Dir, merged.Spec.Dir)
			}
		})
	}
}

// TestMergeCorpusCoveringInputsSound generates covering inputs from the
// symbolic paths in both modes for every corpus loop the engine supports,
// and replays each input on the concrete interpreter: the claimed
// offset/NULL result must be what the loop actually does. Merging changes
// how many inputs come out (merged paths cover many suffixes each), never
// whether they are right — and it must still produce at least one whenever
// enumeration does.
func TestMergeCorpusCoveringInputsSound(t *testing.T) {
	ctx := context.Background()
	for _, l := range loopdb.Corpus() {
		l := l
		t.Run(l.Name, func(t *testing.T) {
			f, err := l.Lower()
			if err != nil {
				t.Fatalf("lower: %v", err)
			}
			gen := func(merge bool) []TestInput {
				b := engine.NewBudget(ctx, engine.Limits{})
				inputs, cerr := loopCoveringInputs(f, 3, b, ResilientOptions{Options: Options{Merge: merge}})
				if cerr != nil {
					return nil // unsupported construct or no feasible path: same in both modes
				}
				return inputs
			}
			enum, merged := gen(false), gen(true)
			if (len(enum) == 0) != (len(merged) == 0) {
				t.Fatalf("coverage disagrees: enumerated %d inputs, merged %d", len(enum), len(merged))
			}
			check := func(mode string, inputs []TestInput) {
				for _, ti := range inputs {
					mem := cir.NewMemory()
					// Replay at the generation capacity (3 content bytes +
					// terminator): stride loops legitimately read past the
					// NUL, and those reads are in bounds only at the
					// capacity the symbolic buffer had.
					raw := make([]byte, 4)
					copy(raw, ti.Input)
					obj := mem.AllocData(raw)
					res, rerr := cir.Exec(f, []cir.CVal{cir.PtrVal(obj, 0)}, mem, 1<<16)
					if rerr != nil {
						t.Fatalf("%s input %q: interpreter errored: %v", mode, ti.Input, rerr)
					}
					switch {
					case ti.Null:
						if !res.Ret.IsPtr || !res.Ret.IsNull() {
							t.Fatalf("%s input %q: claimed NULL, interpreter returned %s", mode, ti.Input, res.Ret)
						}
					default:
						if !res.Ret.IsPtr || res.Ret.IsNull() || res.Ret.Obj != obj || res.Ret.Off != ti.Offset {
							t.Fatalf("%s input %q: claimed offset %d, interpreter returned %s",
								mode, ti.Input, ti.Offset, res.Ret)
						}
					}
				}
			}
			check("enumerated", enum)
			check("merged", merged)
		})
	}
}
