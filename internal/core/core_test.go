package core

import (
	"errors"
	"strings"
	"testing"
	"time"
)

const figure1 = `
#define whitespace(c) (((c) == ' ') || ((c) == '\t'))
char* loopFunction(char* line) {
  char *p;
  for (p = line; p && *p && whitespace (*p); p++)
    ;
  return p;
}`

func TestSummarizeFigure1(t *testing.T) {
	s, err := Summarize(figure1, "", Options{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if s.Encoded != "ZFP\t \x00F" && s.Encoded != "ZFP \t\x00F" {
		t.Errorf("encoded %q", s.Encoded)
	}
	if !s.Memoryless || s.Direction != "forward" {
		t.Errorf("memoryless report: %v %s", s.Memoryless, s.Direction)
	}
	if !strings.Contains(s.C, "strspn") {
		t.Errorf("C output: %s", s.C)
	}
	off, found := s.Run("  \tx")
	if !found || off != 3 {
		t.Errorf("Run = %d,%v", off, found)
	}
	if _, found := s.Run(""); !found {
		t.Error("empty string should return a pointer")
	}
}

func TestSummarizeNamedFunction(t *testing.T) {
	src := `
char *first(char *s) { while (*s == 'a') s++; return s; }
char *second(char *s) { while (*s == 'b') s++; return s; }`
	s, err := Summarize(src, "second", Options{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if s.Encoded != "Pb\x00F" {
		t.Errorf("encoded %q", s.Encoded)
	}
	if _, err := Summarize(src, "missing", Options{}); err == nil {
		t.Error("missing function must error")
	}
}

func TestSummarizeNoLoopFunction(t *testing.T) {
	_, err := Summarize(`int f(int x) { return x; }`, "", Options{})
	if !errors.Is(err, ErrNoLoopFunction) {
		t.Fatalf("err = %v", err)
	}
}

func TestSummarizeNotFound(t *testing.T) {
	_, err := Summarize(`
char *mid(char *s) {
  int n = 0;
  while (s[n]) n++;
  return s + n / 2;
}`, "", Options{Timeout: 2 * time.Second, MaxProgramSize: 4})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestRequireMemoryless(t *testing.T) {
	src := `
char *skipnum(char *s) {
  while (isdigit(*s))
    s++;
  return s;
}`
	// Without the flag the loop synthesises (meta-characters).
	if _, err := Summarize(src, "", Options{Timeout: time.Minute}); err != nil {
		t.Fatalf("plain summarise: %v", err)
	}
	// With the flag the conservative §3.3 rejection surfaces.
	_, err := Summarize(src, "", Options{Timeout: time.Minute, RequireMemoryless: true})
	if !errors.Is(err, ErrNotMemoryless) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyMemoryless(t *testing.T) {
	r, err := VerifyMemoryless(figure1, "loopFunction")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Memoryless || r.Direction != "forward" {
		t.Fatalf("report %+v", r)
	}
	r, err = VerifyMemoryless(`
char *bad(char *s) {
  int i = 0;
  while (s[i] && i < 5) i++;
  return s + i;
}`, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.Memoryless || r.Reason == "" {
		t.Fatalf("report %+v", r)
	}
}

func TestCheckEquivalence(t *testing.T) {
	src := `char *f(char *s) { while (*s == 'x') s++; return s; }`
	ok, _, err := CheckEquivalence(src, "f", "Px\x00F", 3)
	if err != nil || !ok {
		t.Fatalf("good summary: ok=%v err=%v", ok, err)
	}
	ok, cex, err := CheckEquivalence(src, "f", "Py\x00F", 3)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("wrong summary accepted")
	}
	if !strings.ContainsAny(cex, "xy") && cex == "" {
		t.Logf("counterexample %q (any distinguishing string is fine)", cex)
	}
}

func TestFindCandidates(t *testing.T) {
	cands, err := FindCandidates(`
char *good(char *s) { while (*s == ' ') s++; return s; }
void bad(char *s) { while (*s) { *s = 'x'; s++; } }
`)
	if err != nil {
		t.Fatal(err)
	}
	byFn := map[string]string{}
	for _, c := range cands {
		byFn[c.Function] = c.Stage
	}
	if byFn["good"] != "candidate" || byFn["bad"] != "array-write" {
		t.Fatalf("stages %v", byFn)
	}
}

func TestCoveringInputs(t *testing.T) {
	s, err := Summarize(`
char *find(char *s) {
  while (*s && *s != '@')
    s++;
  return *s == '@' ? s : 0;
}`, "", Options{Timeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	tests := s.CoveringInputs(3)
	if len(tests) == 0 {
		t.Fatal("no tests generated")
	}
	sawNull, sawPtr := false, false
	for _, tc := range tests {
		off, found := s.Run(tc.Input)
		if tc.Null {
			sawNull = true
			if found {
				t.Errorf("%q: expected NULL", tc.Input)
			}
		} else {
			sawPtr = true
			if !found || off != tc.Offset {
				t.Errorf("%q: offset %d/%v, want %d", tc.Input, off, found, tc.Offset)
			}
		}
	}
	if !sawNull || !sawPtr {
		t.Fatalf("tests must cover both the hit and the miss: %+v", tests)
	}
}

func TestCheckRefactoring(t *testing.T) {
	src := `
char *orig(char *s) {
  while (*s == '.')
    s++;
  return s;
}
char *good(char *s) {
  return s + strspn(s, ".");
}
char *bad(char *s) {
  return s + strcspn(s, ".");
}`
	ok, _, err := CheckRefactoring(src, "orig", "good", 3)
	if err != nil || !ok {
		t.Fatalf("good refactoring: ok=%v err=%v", ok, err)
	}
	ok, cex, err := CheckRefactoring(src, "orig", "bad", 3)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("bad refactoring accepted")
	}
	if cex == "" {
		t.Log("empty counterexample string (the empty input distinguishes only when non-dot-initial)")
	}
	if _, _, err := CheckRefactoring(src, "orig", "missing", 3); err == nil {
		t.Fatal("missing function must error")
	}
}

func TestSummarizeEmitValidateRoundTrip(t *testing.T) {
	// Close the full loop: summarise, emit C, re-parse the emitted C, and
	// prove it equivalent to the original — for a forward and a backward
	// loop.
	srcs := []string{
		`char *orig(char *s) {
  while (*s == '.' || *s == '/')
    s++;
  return s;
}`,
		`char *orig(char *s) {
  char *p = s + strlen(s) - 1;
  while (p >= s && *p == '/')
    p--;
  return p;
}`,
	}
	for _, src := range srcs {
		summary, err := Summarize(src, "orig", Options{Timeout: time.Minute})
		if err != nil {
			t.Fatalf("summarise: %v", err)
		}
		patched := src + "\n" + summary.C
		ok, cex, err := CheckRefactoring(patched, "orig", "orig_summary", 3)
		if err != nil {
			t.Fatalf("validate %q: %v\n%s", summary.Encoded, err, summary.C)
		}
		if !ok {
			t.Fatalf("emitted C not equivalent (cex %q):\n%s", cex, summary.C)
		}
	}
}

func TestSummarizeParseError(t *testing.T) {
	if _, err := Summarize("char *f(char *s) {", "", Options{}); err == nil {
		t.Fatal("parse error must surface")
	}
}

func TestVocabularyRestriction(t *testing.T) {
	src := `char *f(char *s) { while (*s == 'q') s++; return s; }`
	if _, err := Summarize(src, "", Options{Vocabulary: "EF", Timeout: 2 * time.Second}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("EF-only vocabulary should fail: %v", err)
	}
	if _, err := Summarize(src, "", Options{Vocabulary: "QZ"}); err == nil {
		t.Fatal("bad vocabulary letters must error")
	}
}
