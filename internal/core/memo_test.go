package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"stringloops/internal/diskcache"
	"stringloops/internal/engine"
)

// newTestTier builds a cache tier over a temp directory.
func newTestTier(t *testing.T) *diskcache.Tier {
	t.Helper()
	tier, err := diskcache.Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return tier
}

// TestSummarizeMemoHit: the second summarisation of a structurally identical
// loop (different names, fresh parse) must come from the memo store, agree
// bit-for-bit on the encoded program, and carry the new function's name in
// the compiled C.
func TestSummarizeMemoHit(t *testing.T) {
	tier := newTestTier(t)
	opts := Options{Timeout: time.Minute, Cache: tier}

	a, err := Summarize(`char *skipdots(char *s) { while (*s == '.') s++; return s; }`, "", opts)
	if err != nil {
		t.Fatal(err)
	}

	b1 := engine.NewBudget(nil, engine.Limits{})
	opts2 := opts
	opts2.Budget = b1
	b, err := Summarize(`char *advance(char *p) { while (*p == '.') p = p + 1; return p; }`, "", opts2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Encoded != a.Encoded || b.Memoryless != a.Memoryless || b.Direction != a.Direction {
		t.Fatalf("memoised summary diverged: %q/%v/%s vs %q/%v/%s",
			b.Encoded, b.Memoryless, b.Direction, a.Encoded, a.Memoryless, a.Direction)
	}
	if want := "advance_summary"; !strings.Contains(b.C, want) {
		t.Errorf("compiled C must use the new function's name %q:\n%s", want, b.C)
	}
	if b1.DiskHits() == 0 {
		t.Error("second run must be charged a memo hit")
	}
	// The memoised summary must still execute.
	if off, found := b.Run("..x"); !found || off != 2 {
		t.Errorf("memoised summary Run = %d,%v", off, found)
	}
}

// TestSummarizeMemoNotFound: a clean exhaustive not-found is memoised too —
// the second run returns ErrNotFound without re-searching.
func TestSummarizeMemoNotFound(t *testing.T) {
	tier := newTestTier(t)
	src := `
char *mid(char *s) {
  int n = 0;
  while (s[n]) n++;
  return s + n / 2;
}`
	opts := Options{Timeout: time.Minute, Cache: tier, MaxProgramSize: 3}
	if _, err := Summarize(src, "", opts); !errors.Is(err, ErrNotFound) {
		t.Fatalf("first run: %v", err)
	}
	b := engine.NewBudget(nil, engine.Limits{})
	opts2 := opts
	opts2.Budget = b
	if _, err := Summarize(src, "", opts2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second run: %v", err)
	}
	if b.DiskHits() == 0 {
		t.Error("negative verdict must come from the memo store")
	}
}

// TestSummarizeMemoPersistsAcrossTiers: Save/Open round-trips the memo on
// disk, standing in for a second process warm-starting from the cache dir.
func TestSummarizeMemoPersistsAcrossTiers(t *testing.T) {
	dir := t.TempDir()
	tier, err := diskcache.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := `char *skipsp(char *s) { while (*s == ' ') s++; return s; }`
	a, err := Summarize(src, "", Options{Timeout: time.Minute, Cache: tier})
	if err != nil {
		t.Fatal(err)
	}
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "memo.cache")); err != nil {
		t.Fatalf("memo snapshot missing: %v", err)
	}

	tier2, err := diskcache.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tier2.Close()
	bud := engine.NewBudget(nil, engine.Limits{})
	b, err := Summarize(src, "", Options{Timeout: time.Minute, Cache: tier2, Budget: bud})
	if err != nil {
		t.Fatal(err)
	}
	if b.Encoded != a.Encoded {
		t.Fatalf("warm-start summary %q != cold summary %q", b.Encoded, a.Encoded)
	}
	if bud.DiskHits() == 0 {
		t.Error("warm start must hit the loaded memo")
	}
}

// TestSummarizeMemoKeyRespectsOptions: changing an outcome-shaping option
// must not reuse an entry computed under different options.
func TestSummarizeMemoKeyRespectsOptions(t *testing.T) {
	tier := newTestTier(t)
	src := `char *skipa(char *s) { while (*s == 'a') s++; return s; }`
	if _, err := Summarize(src, "", Options{Timeout: time.Minute, Cache: tier}); err != nil {
		t.Fatal(err)
	}
	// A vocabulary without the loop's gadgets must fail even though the full
	// vocabulary's entry is in the memo.
	if _, err := Summarize(src, "", Options{Timeout: time.Minute, Cache: tier, Vocabulary: "EF"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("restricted vocabulary must not reuse the full-vocabulary entry: %v", err)
	}
}
