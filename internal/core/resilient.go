package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"stringloops/internal/bv"
	"stringloops/internal/cir"
	"stringloops/internal/cstr"
	"stringloops/internal/engine"
	"stringloops/internal/faultpoint"
	"stringloops/internal/memoryless"
	"stringloops/internal/obs"
	"stringloops/internal/qcache"
	"stringloops/internal/sat"
	"stringloops/internal/supervise"
	"stringloops/internal/symex"
)

// Rung identifies a level of the graceful-degradation ladder walked by
// SummarizeResilient, from the full result down to the concrete floor.
type Rung int

// The ladder, best first.
const (
	// RungFull is the complete summary (what Summarize returns).
	RungFull Rung = iota
	// RungMemoryless is the §3 memorylessness verdict alone — synthesis
	// failed, but the loop's class is still established.
	RungMemoryless
	// RungCovering is a set of path-covering concrete inputs obtained from
	// symbolic execution of the loop directly (no synthesis, no solver-heavy
	// equivalence queries) — the §4.3 testing application degraded to the
	// loop itself.
	RungCovering
	// RungSmoke is the loop's concrete behaviour on a fixed input battery,
	// computed purely by the interpreter; it uses no solver and no symbolic
	// engine, so it is the fault-free floor of the ladder.
	RungSmoke
	// RungFailed means even the floor failed (e.g. the source does not
	// parse); Outcome.Err carries the cause.
	RungFailed
)

func (r Rung) String() string {
	switch r {
	case RungFull:
		return "full"
	case RungMemoryless:
		return "memoryless"
	case RungCovering:
		return "covering"
	case RungSmoke:
		return "smoke"
	}
	return "failed"
}

// AttemptRecord is one supervised attempt at one rung.
type AttemptRecord struct {
	Rung     Rung
	Limits   engine.Limits
	Err      error
	Panicked bool
}

// SmokeResult is the floor rung's payload: the loop's concrete behaviour on
// the fixed smoke battery (undefined-behaviour inputs are omitted).
type SmokeResult struct {
	Inputs []TestInput
}

// Outcome is the structured result of a resilient summarisation: which rung
// was reached, its payload, and the full attempt history that led there.
type Outcome struct {
	// Rung is the highest rung that succeeded.
	Rung Rung
	// Summary is set when Rung == RungFull.
	Summary *Summary
	// Memoryless is set when Rung == RungMemoryless.
	Memoryless *MemorylessReport
	// Covering is set when Rung == RungCovering.
	Covering []TestInput
	// Smoke is set when Rung == RungSmoke.
	Smoke *SmokeResult
	// Attempts is every attempt made, across all rungs tried, in order.
	Attempts []AttemptRecord
	// Err is the final error when Rung == RungFailed (and the last rung
	// error otherwise, for diagnostics; nil when RungFull succeeded on the
	// first attempt).
	Err error
}

// ResilientOptions configures SummarizeResilient. The embedded Options
// configure each attempt exactly as for Summarize, except that Budget is
// ignored: every attempt runs under a fresh budget derived from Limits so
// escalation can actually grant more resources.
type ResilientOptions struct {
	Options
	// Ctx, when non-nil, is the cancellation root of the whole ladder: every
	// attempt budget derives from it, so cancelling it (a disconnected
	// client, a draining server) unwinds the pipeline mid-solve and stops
	// the descent instead of walking the remaining rungs for nobody. Nil
	// keeps the pre-existing behaviour (attempts run under pure limits).
	Ctx context.Context
	// StartRung skips the ladder's rungs above it: a server shedding load
	// starts a request at RungMemoryless (or lower) to spend less per
	// request before it has to shed requests. RungFull (the zero value) is
	// the complete ladder.
	StartRung Rung
	// OnBudget, when non-nil, observes every attempt budget as it is
	// created. Servers use it to reconcile per-request budget spend against
	// the request's metric registry after the ladder returns.
	OnBudget func(*engine.Budget)
	// Limits is the first attempt's resource envelope. The zero value means
	// a wall-clock envelope from Options.Timeout (default 30s); chaos tests
	// use pure resource limits (conflicts/forks/nodes) for determinism.
	Limits engine.Limits
	// MaxLimits caps escalation per field (zero fields are uncapped).
	MaxLimits engine.Limits
	// MaxAttempts bounds attempts per rung (default 3).
	MaxAttempts int
	// Multiplier scales limits between attempts (default 2).
	Multiplier float64
	// Backoff is the base sleep before each retry (default 0: no sleeping,
	// which keeps batch runs deterministic).
	Backoff time.Duration
	// Seed drives the deterministic backoff jitter.
	Seed uint64
	// Tracer, when non-nil, records the ladder: one span per rung tried
	// (with its failure error as an attribute) plus the per-phase spans the
	// instrumented layers emit under each attempt's budget.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives the supervision counters and every
	// per-attempt budget's spend; faultpoint firings are dumped into
	// faultpoint.fired.<site> counters at the end of the run.
	Metrics *obs.Metrics
}

func (o ResilientOptions) policy() supervise.Policy {
	lim := o.Limits
	if lim == (engine.Limits{}) {
		t := o.Timeout
		if t == 0 {
			t = 30 * time.Second
		}
		lim = engine.Limits{Timeout: t}
	}
	return supervise.Policy{
		MaxAttempts: o.MaxAttempts,
		Multiplier:  o.Multiplier,
		Limits:      lim,
		MaxLimits:   o.MaxLimits,
		Backoff:     o.Backoff,
		Seed:        o.Seed,
		Tracer:      o.Tracer,
		Metrics:     o.Metrics,
	}
}

// newAttemptBudget builds one attempt's budget carrying the run's
// observability handles, rooted at the ladder's cancellation context.
func (o ResilientOptions) newAttemptBudget(lim engine.Limits) *engine.Budget {
	b := engine.NewBudget(o.Ctx, lim).SetObs(o.Tracer, o.Metrics)
	if o.OnBudget != nil {
		o.OnBudget(b)
	}
	return b
}

// errCancelled classifies a ladder abandoned by its caller: it wraps the
// context cause but deliberately NOT engine.ErrBudget, so the supervisor
// treats it as non-retryable and the descent stops instead of burning
// attempts for a caller that is gone.
func cancelErr(cause error) error {
	return fmt.Errorf("core: resilient ladder cancelled: %w", cause)
}

// SummarizeResilient summarises with supervision: panics are isolated into
// typed errors, budget exhaustion is retried under exponentially escalating
// limits, and when the full summary stays out of reach the ladder degrades
// — memorylessness verdict, then covering inputs, then the concrete smoke
// floor — so every item yields the best outcome its faults allow.
func SummarizeResilient(source, funcName string, opts ResilientOptions) Outcome {
	var out Outcome

	// The floor rungs need the lowered loop; a lowering failure is the one
	// genuinely unrecoverable outcome (nothing to run the interpreter on).
	f, lowerErr := lowerTraced(source, funcName, opts.Tracer)
	if lowerErr != nil {
		return Outcome{Rung: RungFailed, Err: lowerErr}
	}
	// Dump faultpoint firings into the registry when the run ends, so chaos
	// reports show which sites actually fired alongside the retry counters.
	if opts.Metrics != nil && opts.Faults != nil {
		defer func() {
			for _, site := range faultpoint.Sites() {
				if n := opts.Faults.Fired(site); n > 0 {
					opts.Metrics.Counter(obs.MFaultPrefix + site.String()).Add(int64(n))
				}
			}
		}()
	}

	maxLen := max(3, opts.MaxExampleLength)
	rungs := []supervise.Rung{
		{Name: RungFull.String(), Run: func(lim engine.Limits) error {
			o := opts.Options
			o.Budget = opts.newAttemptBudget(lim)
			s, err := Summarize(source, funcName, o)
			if err != nil {
				return err
			}
			out.Summary = s
			return nil
		}},
		{Name: RungMemoryless.String(), Run: func(lim engine.Limits) error {
			b := opts.newAttemptBudget(lim)
			r := memoryless.VerifyWith(f, memoryless.VerifyOptions{
				MaxLen: maxLen, Budget: b, Faults: opts.Faults, Merge: opts.Merge,
				NoVN: opts.NoVN, Disk: opts.Cache.QueryStore(), Memo: opts.Cache.MemoStore(),
			})
			if r.Err != nil {
				return r.Err
			}
			m := &MemorylessReport{Memoryless: r.Memoryless, Reason: r.Reason, Elapsed: r.Elapsed}
			if r.Memoryless {
				m.Direction = r.Spec.Dir.String()
			}
			out.Memoryless = m
			return nil
		}},
		{Name: RungCovering.String(), Run: func(lim engine.Limits) error {
			b := opts.newAttemptBudget(lim)
			inputs, err := loopCoveringInputs(f, maxLen, b, opts)
			if err != nil {
				return err
			}
			out.Covering = inputs
			return nil
		}},
		{Name: RungSmoke.String(), Run: func(engine.Limits) error {
			out.Smoke = smokeRun(f)
			return nil
		}},
	}

	// A shed server starts the ladder below the top; rung identities stay
	// global (RungMemoryless is RungMemoryless whether or not RungFull was
	// ever attempted), so indices are offset back after the descent.
	start := opts.StartRung
	if start < RungFull || start > RungSmoke {
		start = RungFull
	}
	rungs = rungs[start:]
	// Cancellation cuts the descent: once the caller's context is done,
	// every remaining rung would run under an already-exhausted budget for
	// a caller that is gone. The wrapper error is deliberately outside
	// engine.ErrBudget so the supervisor classifies it non-retryable.
	if opts.Ctx != nil {
		for i := range rungs {
			run := rungs[i].Run
			rungs[i].Run = func(lim engine.Limits) error {
				if cause := opts.Ctx.Err(); cause != nil {
					return cancelErr(cause)
				}
				return run(lim)
			}
		}
	}

	idx, history, err := supervise.Descend(opts.policy(), rungs)
	for ri, attempts := range history {
		for _, a := range attempts {
			out.Attempts = append(out.Attempts, AttemptRecord{
				Rung: Rung(ri) + start, Limits: a.Limits, Err: a.Err, Panicked: a.Panicked,
			})
		}
	}
	out.Err = err
	if idx >= len(rungs) {
		out.Rung = RungFailed
		return out
	}
	out.Rung = Rung(idx) + start
	// Lower rungs' payloads stay nil; a successful rung clears Err only for
	// the top rung (lower-rung successes keep the last failure around as the
	// reason the ladder descended).
	if out.Rung == RungFull {
		out.Err = nil
	}
	return out
}

// loopCoveringInputs generates one concrete input per feasible terminal path
// of the loop on strings up to maxLen, directly from symbolic execution —
// the degraded form of Summary.CoveringInputs that needs no synthesised
// summary.
func loopCoveringInputs(f *cir.Func, maxLen int, budget *engine.Budget, opts ResilientOptions) ([]TestInput, error) {
	bvin := bv.NewInterner().SetBudget(budget).SetFaults(opts.Faults).SetVN(!opts.NoVN)
	cache := qcache.New(bvin).SetFaults(opts.Faults).SetDisk(opts.Cache.QueryStore())
	buf := symex.SymbolicString(bvin, "s", maxLen)
	eng := &symex.Engine{
		Objects:          [][]*bv.Term{buf},
		CheckFeasibility: true,
		Merge:            opts.Merge,
		In:               bvin,
		Budget:           budget,
		Cache:            cache,
		Faults:           opts.Faults,
	}
	paths, err := eng.Run(f, []symex.Value{symex.PtrValue(0, bvin.Int32(0))}, bv.True)
	if err != nil {
		return nil, err
	}
	var out []TestInput
	seen := map[string]bool{}
	for _, p := range paths {
		if p.Err != nil {
			continue // undefined behaviour: no test input to emit
		}
		st, model := cache.CheckSat(budget, 0, p.Cond)
		if st == sat.Unknown {
			return nil, fmt.Errorf("core: covering-input query exhausted its budget (%w)", engine.ErrBudget)
		}
		if st != sat.Sat {
			continue
		}
		ev := bv.NewEvaluator(model)
		raw := make([]byte, maxLen+1)
		for i := 0; i < maxLen; i++ {
			raw[i] = byte(ev.Term(buf[i]))
		}
		in := cstr.GoString(raw, 0)
		// A model may place significant bytes after an interior NUL (a
		// rawmemchr-style loop reads past the terminator), but TestInput is
		// a C string and cannot carry them. Keep the input only if the
		// NUL-truncated buffer still drives the loop down this path, and
		// evaluate the result under the truncated bytes.
		trunc := &bv.Assignment{Terms: map[string]uint64{}}
		for i := 0; i < maxLen; i++ {
			var b byte
			if i < len(in) {
				b = in[i]
			}
			trunc.Terms[fmt.Sprintf("s[%d]", i)] = uint64(b)
		}
		tev := bv.NewEvaluator(trunc)
		if !tev.Bool(p.Cond) {
			continue
		}
		if seen[in] {
			continue
		}
		seen[in] = true
		ti := TestInput{Input: in}
		switch {
		case p.Ret.IsNull():
			ti.Null = true
		case p.Ret.IsPtr && p.Ret.Obj == 0:
			ti.Offset = int(int32(tev.Term(p.Ret.Off)))
		default:
			continue
		}
		out = append(out, ti)
	}
	// Under fault injection every path can come back errored (e.g. injected
	// fork failures); an empty input set is no payload, so the rung reports
	// failure and the ladder descends to the smoke floor.
	if len(out) == 0 {
		return nil, errors.New("core: no feasible terminal path yielded a covering input")
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Input < out[j].Input })
	return out, nil
}

// smokeBattery is the fixed input set of the floor rung.
var smokeBattery = []string{
	"", " ", "a", "ab", "abc", "  x", "x  ", "0", "123", ":", "a:b", "/", "\t",
}

// smokeRun executes the loop concretely on the smoke battery. It needs only
// the interpreter — no solver, no symbolic engine — so it succeeds whenever
// the loop was lowered at all.
func smokeRun(f *cir.Func) *SmokeResult {
	res := &SmokeResult{}
	for _, in := range smokeBattery {
		buf := cstr.Terminate(in)
		mem := cir.NewMemory()
		obj := mem.AllocData(append([]byte{}, buf...))
		r, err := cir.Exec(f, []cir.CVal{cir.PtrVal(obj, 0)}, mem, 1<<16)
		ti := TestInput{Input: in}
		switch {
		case err != nil:
			continue // undefined behaviour on this input
		case r.Ret.IsNull():
			ti.Null = true
		case r.Ret.IsPtr && r.Ret.Obj == obj:
			ti.Offset = r.Ret.Off
		default:
			continue
		}
		res.Inputs = append(res.Inputs, ti)
	}
	return res
}

// ResilientItem is one loop in a SummarizeAllResilient batch.
type ResilientItem struct {
	Source string
	Func   string
	Opts   ResilientOptions
}

// SummarizeAllResilient runs SummarizeResilient over every item on a bounded
// worker pool. Like SummarizeAll, each item owns its whole pipeline (and,
// under fault injection, its own registry), so outcomes are element-wise
// independent of the worker count and identical across reruns with the same
// seeds.
func SummarizeAllResilient(items []ResilientItem, workers int) []Outcome {
	results := make([]Outcome, len(items))
	engine.Map(engine.Workers(workers, len(items)), len(items), func(i int) {
		results[i] = SummarizeResilient(items[i].Source, items[i].Func, items[i].Opts)
	})
	return results
}

// PanicError re-exports the supervised panic type so callers of this package
// (and the facade) can errors.As against it without importing supervise.
type PanicError = supervise.PanicError
