package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"stringloops/internal/engine"
)

// batchItems builds a small corpus of quick loops (plus one malformed item
// so error outcomes are exercised too). Each item gets its own
// Timeout-derived budget.
func batchItems() []BatchItem {
	srcs := []string{
		figure1,
		`char *f(char *s) { while (*s == ' ') s++; return s; }`,
		`char *f(char *s) { while (*s == 'a') s++; return s; }`,
		`char *f(char *s) { while (*s == 'b') s++; return s; }`,
		`char *f(char *s) { while (*s == 'x') s++; return s; }`,
		`char *f(char *s) { while (*s == '.') s++; return s; }`,
		`char *f(char *s) { while (*s == 'z') s++; return s; }`,
		`char *f(char *s) { while (*s == '_') s++; return s; }`,
		`int notaloop(int x) { return x; }`, // errors with ErrNoLoopFunction
	}
	items := make([]BatchItem, len(srcs))
	for i, src := range srcs {
		items[i] = BatchItem{Source: src, Opts: Options{Timeout: time.Minute}}
	}
	return items
}

// TestSummarizeAllParallelMatchesSerial is the determinism check (and, under
// `go test -race`, the data-race regression test for the whole pipeline): 9
// loops summarised on 8 workers must produce element-wise identical outcomes
// to a serial run, because every item owns its interner, solver stack and
// budget.
func TestSummarizeAllParallelMatchesSerial(t *testing.T) {
	items := batchItems()
	serial := SummarizeAll(items, 1)
	parallel := SummarizeAll(items, 8)
	if len(serial) != len(items) || len(parallel) != len(items) {
		t.Fatalf("result lengths: serial %d, parallel %d, want %d",
			len(serial), len(parallel), len(items))
	}
	for i := range items {
		s, p := serial[i], parallel[i]
		if s.Index != i || p.Index != i {
			t.Errorf("item %d: indices %d/%d out of order", i, s.Index, p.Index)
		}
		switch {
		case s.Err != nil || p.Err != nil:
			if s.Err == nil || p.Err == nil || s.Err.Error() != p.Err.Error() {
				t.Errorf("item %d: errors differ: serial %v, parallel %v", i, s.Err, p.Err)
			}
		case s.Summary.Encoded != p.Summary.Encoded:
			t.Errorf("item %d: programs differ: serial %q, parallel %q",
				i, s.Summary.Encoded, p.Summary.Encoded)
		case s.Summary.Memoryless != p.Summary.Memoryless ||
			s.Summary.Direction != p.Summary.Direction:
			t.Errorf("item %d: memoryless reports differ: serial %v/%s, parallel %v/%s",
				i, s.Summary.Memoryless, s.Summary.Direction,
				p.Summary.Memoryless, p.Summary.Direction)
		}
	}
}

func TestSummarizeAllDefaultWorkerCount(t *testing.T) {
	items := batchItems()[:2]
	res := SummarizeAll(items, 0) // < 1 means one worker per CPU
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	if res[0].Err != nil || res[0].Summary == nil {
		t.Fatalf("item 0: err=%v", res[0].Err)
	}
}

func TestSummarizeCancelledBudgetReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run starts
	start := time.Now()
	_, err := Summarize(figure1, "", Options{
		Budget: engine.NewBudget(ctx, engine.Limits{}),
	})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if !errors.Is(err, engine.ErrBudget) {
		t.Fatalf("err = %v must classify as engine.ErrBudget", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancelled Summarize took %v to return", d)
	}
}

func TestSummarizeAllSharedBudgetCancelsWholeBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	shared := engine.NewBudget(ctx, engine.Limits{})
	items := batchItems()
	for i := range items {
		items[i].Opts.Budget = shared
	}
	start := time.Now()
	res := SummarizeAll(items, 4)
	for i, r := range res {
		if r.Err == nil {
			t.Errorf("item %d: expected an error under a cancelled shared budget", i)
		}
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancelled batch took %v to return", d)
	}
}
