package core

import (
	"stringloops/internal/engine"
	"stringloops/internal/supervise"
)

// BatchItem is one loop to summarise in a SummarizeAll run.
type BatchItem struct {
	// Source is the C source containing the loop.
	Source string
	// Func names the loop function; empty picks the first char *f(char *)
	// function, as in Summarize.
	Func string
	// Opts configures this item's run. When Opts.Budget is nil each item
	// gets its own Timeout-derived budget, so one stuck loop cannot starve
	// the others; a caller-supplied Budget is shared across every item that
	// carries it, giving whole-batch cancellation.
	Opts Options
}

// BatchResult is the outcome for the item at the same index.
type BatchResult struct {
	// Index is the item's position in the input slice; results always come
	// back in input order regardless of worker count.
	Index   int
	Summary *Summary
	Err     error
}

// SummarizeAll summarises every item on a bounded pool of workers. Each item
// runs its own pipeline — interner, solver stack, budget — so runs share no
// mutable state and the per-item results are independent of scheduling:
// SummarizeAll(items, 8) and SummarizeAll(items, 1) return element-wise
// identical outcomes. workers < 1 means one worker per CPU; workers == 1
// degenerates to a plain serial loop on the calling goroutine.
//
// A panic inside one item is isolated to that item: its result carries a
// *supervise.PanicError (errors.As-able) with the goroutine stack attached,
// and every other item completes normally.
func SummarizeAll(items []BatchItem, workers int) []BatchResult {
	results := make([]BatchResult, len(items))
	engine.Map(engine.Workers(workers, len(items)), len(items), func(i int) {
		var s *Summary
		err := supervise.Guard(func() error {
			var ierr error
			s, ierr = Summarize(items[i].Source, items[i].Func, items[i].Opts)
			return ierr
		})
		if err != nil {
			s = nil // a panic after partial work must not leak a half summary
		}
		results[i] = BatchResult{Index: i, Summary: s, Err: err}
	})
	return results
}
