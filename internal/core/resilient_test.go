package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"stringloops/internal/engine"
	"stringloops/internal/faultpoint"
	"stringloops/internal/supervise"
)

// panicAlways arms only the symex panic site, at rate 1: every symbolic
// execution entry panics.
func panicAlways(seed uint64) *faultpoint.Registry {
	return faultpoint.New(faultpoint.Config{
		Seed:  seed,
		Rates: map[faultpoint.Site]float64{faultpoint.SymexPanic: 1},
	})
}

// TestSummarizeAllIsolatesPanics is the regression test for the batch panic
// exposure: one deliberately panicking item must not take down the batch,
// and its result must carry a typed *supervise.PanicError.
func TestSummarizeAllIsolatesPanics(t *testing.T) {
	items := []BatchItem{
		{Source: `char *f(char *s) { while (*s == ' ') s++; return s; }`,
			Opts: Options{Timeout: time.Minute}},
		{Source: figure1,
			Opts: Options{Timeout: time.Minute, Faults: panicAlways(7)}},
		{Source: `char *f(char *s) { while (*s == 'x') s++; return s; }`,
			Opts: Options{Timeout: time.Minute}},
	}
	res := SummarizeAll(items, 2)
	if res[0].Err != nil || res[0].Summary == nil {
		t.Errorf("item 0 (healthy): err = %v", res[0].Err)
	}
	if res[2].Err != nil || res[2].Summary == nil {
		t.Errorf("item 2 (healthy): err = %v", res[2].Err)
	}
	var pe *supervise.PanicError
	if !errors.As(res[1].Err, &pe) {
		t.Fatalf("item 1 err = %v, want *supervise.PanicError", res[1].Err)
	}
	var ip faultpoint.InjectedPanic
	if v, ok := pe.Value.(faultpoint.InjectedPanic); ok {
		ip = v
	} else {
		t.Fatalf("panic value %v (%T), want faultpoint.InjectedPanic", pe.Value, pe.Value)
	}
	if ip.Site != faultpoint.SymexPanic {
		t.Errorf("panic site = %v, want SymexPanic", ip.Site)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
	if res[1].Summary != nil {
		t.Error("panicked item leaked a summary")
	}
}

// TestSummarizeResilientMatchesSummarize is the faults-off parity check:
// with no registry armed, the resilient path must land on RungFull with a
// summary element-wise identical to plain Summarize.
func TestSummarizeResilientMatchesSummarize(t *testing.T) {
	srcs := []string{
		figure1,
		`char *f(char *s) { while (*s == ' ') s++; return s; }`,
		`char *f(char *s) { while (*s && *s != ':') s++; return s; }`,
	}
	for _, src := range srcs {
		plain, err := Summarize(src, "", Options{Timeout: time.Minute})
		if err != nil {
			t.Fatalf("Summarize: %v", err)
		}
		out := SummarizeResilient(src, "", ResilientOptions{
			Options: Options{Timeout: time.Minute},
		})
		if out.Rung != RungFull {
			t.Fatalf("rung = %v (err %v), want full", out.Rung, out.Err)
		}
		if out.Summary.Encoded != plain.Encoded {
			t.Errorf("resilient summary %q != plain %q", out.Summary.Encoded, plain.Encoded)
		}
		if len(out.Attempts) != 1 || out.Attempts[0].Err != nil {
			t.Errorf("attempts = %+v, want one clean attempt", out.Attempts)
		}
	}
}

// TestSummarizeResilientDegradesToSmokeUnderPanicStorm: with every symbolic
// execution panicking, the full/memoryless/covering rungs all fail but the
// concrete smoke floor still produces a result.
func TestSummarizeResilientDegradesToSmokeUnderPanicStorm(t *testing.T) {
	out := SummarizeResilient(figure1, "", ResilientOptions{
		Options: Options{Timeout: time.Minute, Faults: panicAlways(3)},
	})
	if out.Rung != RungSmoke {
		t.Fatalf("rung = %v (err %v), want smoke", out.Rung, out.Err)
	}
	if out.Smoke == nil || len(out.Smoke.Inputs) == 0 {
		t.Fatal("smoke payload empty")
	}
	// figure1 skips leading whitespace: "  x" must map to offset 2.
	found := false
	for _, ti := range out.Smoke.Inputs {
		if ti.Input == "  x" {
			found = true
			if ti.Null || ti.Offset != 2 {
				t.Errorf("smoke on %q = %+v, want offset 2", ti.Input, ti)
			}
		}
	}
	if !found {
		t.Error(`smoke battery missing "  x"`)
	}
	// Every failed rung must have recorded a panicked attempt.
	panicked := 0
	for _, a := range out.Attempts {
		if a.Panicked {
			panicked++
		}
	}
	if panicked != 3 {
		t.Errorf("recorded %d panicked attempts, want 3 (full, memoryless, covering)", panicked)
	}
}

// TestSummarizeResilientEscalatesBudget: a node-starved first attempt must be
// retried with doubled limits, and the attempt history must show the
// escalation.
func TestSummarizeResilientEscalatesBudget(t *testing.T) {
	out := SummarizeResilient(figure1, "", ResilientOptions{
		Options:     Options{Timeout: time.Minute},
		Limits:      engine.Limits{Nodes: 50},
		MaxAttempts: 2,
	})
	if len(out.Attempts) < 2 {
		t.Fatalf("attempts = %+v, want at least the escalated retry", out.Attempts)
	}
	if out.Attempts[0].Rung != RungFull || out.Attempts[0].Limits.Nodes != 50 {
		t.Errorf("attempt 0 = %+v, want full rung at 50 nodes", out.Attempts[0])
	}
	if !errors.Is(out.Attempts[0].Err, engine.ErrBudget) {
		t.Errorf("attempt 0 err = %v, want budget classification", out.Attempts[0].Err)
	}
	if out.Attempts[1].Limits.Nodes != 100 {
		t.Errorf("attempt 1 nodes = %d, want doubled to 100", out.Attempts[1].Limits.Nodes)
	}
}

// TestSummarizeResilientFailedOnBadSource: a source that does not parse has
// no floor to stand on — the outcome is RungFailed with the parse error.
func TestSummarizeResilientFailedOnBadSource(t *testing.T) {
	out := SummarizeResilient(`int notaloop(int x) { return x; }`, "", ResilientOptions{})
	if out.Rung != RungFailed {
		t.Fatalf("rung = %v, want failed", out.Rung)
	}
	if !errors.Is(out.Err, ErrNoLoopFunction) {
		t.Errorf("err = %v, want ErrNoLoopFunction", out.Err)
	}
}

// TestSummarizeResilientDeterministicUnderSeed: the same fault seed must
// reproduce the same outcome, rung, and attempt shape, serially and in a
// batch at any worker count.
func TestSummarizeResilientDeterministicUnderSeed(t *testing.T) {
	mkItems := func() []ResilientItem {
		srcs := []string{
			figure1,
			`char *f(char *s) { while (*s == ' ') s++; return s; }`,
			`char *f(char *s) { while (*s && *s != ':') s++; return s; }`,
			`char *f(char *s) { while (*s == 'a' || *s == 'b') s++; return s; }`,
		}
		items := make([]ResilientItem, len(srcs))
		for i, src := range srcs {
			items[i] = ResilientItem{Source: src, Opts: ResilientOptions{
				Options: Options{
					Timeout: time.Minute,
					Faults: faultpoint.New(faultpoint.Config{
						Seed: uint64(1000 + i),
						Rates: map[faultpoint.Site]float64{
							faultpoint.SatUnknown:    0.05,
							faultpoint.BVNodeExhaust: 0.0005,
							faultpoint.QCacheMiss:    0.2,
							faultpoint.CegisReject:   0.1,
						},
					}),
				},
				Limits:      engine.Limits{Conflicts: 20000, Nodes: 2000000},
				MaxAttempts: 2,
			}}
		}
		return items
	}
	a := SummarizeAllResilient(mkItems(), 1)
	b := SummarizeAllResilient(mkItems(), 4)
	for i := range a {
		if a[i].Rung != b[i].Rung {
			t.Errorf("item %d: rung %v (serial) vs %v (parallel)", i, a[i].Rung, b[i].Rung)
		}
		if len(a[i].Attempts) != len(b[i].Attempts) {
			t.Errorf("item %d: %d attempts vs %d", i, len(a[i].Attempts), len(b[i].Attempts))
			continue
		}
		for j := range a[i].Attempts {
			ae, be := a[i].Attempts[j].Err, b[i].Attempts[j].Err
			if (ae == nil) != (be == nil) || (ae != nil && ae.Error() != be.Error()) {
				t.Errorf("item %d attempt %d: %v vs %v", i, j, ae, be)
			}
		}
		if (a[i].Summary == nil) != (b[i].Summary == nil) {
			t.Errorf("item %d: summary presence differs", i)
		}
		if a[i].Summary != nil && a[i].Summary.Encoded != b[i].Summary.Encoded {
			t.Errorf("item %d: summary %q vs %q", i, a[i].Summary.Encoded, b[i].Summary.Encoded)
		}
	}
}

// TestSummarizeResilientStartRung: a ladder started below the top must skip
// the rungs above its start while keeping global rung identity in the
// outcome and the attempt history.
func TestSummarizeResilientStartRung(t *testing.T) {
	out := SummarizeResilient(figure1, "", ResilientOptions{
		Options:   Options{Timeout: time.Minute},
		StartRung: RungMemoryless,
	})
	if out.Rung != RungMemoryless {
		t.Fatalf("rung = %v (err %v), want memoryless", out.Rung, out.Err)
	}
	if out.Summary != nil {
		t.Error("summary set: the full rung must not have run")
	}
	if out.Memoryless == nil || !out.Memoryless.Memoryless {
		t.Fatalf("memoryless payload = %+v, want a memoryless verdict", out.Memoryless)
	}
	for _, a := range out.Attempts {
		if a.Rung < RungMemoryless {
			t.Errorf("attempt at rung %v, start rung should have skipped it", a.Rung)
		}
	}
	// The floor alone: no solver, one clean attempt, global identity kept.
	out = SummarizeResilient(figure1, "", ResilientOptions{StartRung: RungSmoke})
	if out.Rung != RungSmoke || out.Smoke == nil {
		t.Fatalf("rung = %v (smoke %v), want the smoke floor", out.Rung, out.Smoke)
	}
	if len(out.Attempts) != 1 || out.Attempts[0].Rung != RungSmoke {
		t.Errorf("attempts = %+v, want one attempt at the smoke rung", out.Attempts)
	}
}

// TestSummarizeResilientCancelledCtx: a context cancelled before the ladder
// starts must fail every rung promptly — one attempt each, classified
// non-retryable so no retries burn limits for a caller that is gone.
func TestSummarizeResilientCancelledCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := SummarizeResilient(figure1, "", ResilientOptions{
		Options:     Options{Timeout: time.Minute},
		Ctx:         ctx,
		MaxAttempts: 3,
	})
	if out.Rung != RungFailed {
		t.Fatalf("rung = %v, want failed (cancelled ladder)", out.Rung)
	}
	if !errors.Is(out.Err, context.Canceled) {
		t.Errorf("err = %v, want to wrap context.Canceled", out.Err)
	}
	if errors.Is(out.Err, engine.ErrBudget) {
		t.Error("cancellation classified as budget exhaustion: the supervisor would retry it")
	}
	// Non-retryable: exactly one attempt per rung, never MaxAttempts.
	if len(out.Attempts) != 4 {
		t.Errorf("attempts = %d, want 4 (one per rung, no retries)", len(out.Attempts))
	}
}

// TestSummarizeResilientCancelMidLadder: cancelling between rungs stops the
// descent — the rungs after the cancellation point fail with the cancel
// error instead of running for nobody.
func TestSummarizeResilientCancelMidLadder(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	budgets := 0
	out := SummarizeResilient(figure1, "", ResilientOptions{
		// The panic storm fails every symbolic rung; the cancel fires after
		// the first attempt budget is created, so the remaining rungs see a
		// dead context and the smoke floor is never reached.
		Options:     Options{Timeout: time.Minute, Faults: panicAlways(3)},
		Ctx:         ctx,
		MaxAttempts: 1,
		OnBudget: func(*engine.Budget) {
			budgets++
			cancel()
		},
	})
	if out.Rung != RungFailed {
		t.Fatalf("rung = %v, want failed (ladder abandoned mid-descent)", out.Rung)
	}
	if budgets != 1 {
		t.Errorf("attempt budgets created = %d, want 1 (descent stopped)", budgets)
	}
	if !errors.Is(out.Err, context.Canceled) {
		t.Errorf("err = %v, want to wrap context.Canceled", out.Err)
	}
}
