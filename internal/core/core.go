// Package core wires the paper's pipeline together: parse C source, lower
// the loop function to IR, check the memorylessness conditions (§3),
// synthesise an equivalent gadget program with CEGIS (§2), and compile the
// summary back to C for refactoring (§4.5). The exported package
// stringloops at the module root is a thin facade over this package.
package core

import (
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"stringloops/internal/bv"
	"stringloops/internal/cc"
	"stringloops/internal/cegis"
	"stringloops/internal/cir"
	"stringloops/internal/cstr"
	"stringloops/internal/diskcache"
	"stringloops/internal/engine"
	"stringloops/internal/faultpoint"
	"stringloops/internal/idiom"
	"stringloops/internal/memoryless"
	"stringloops/internal/obs"
	"stringloops/internal/qcache"
	"stringloops/internal/sat"
	"stringloops/internal/strsolver"
	"stringloops/internal/vocab"
)

// Options configures a summarisation run.
type Options struct {
	// Vocabulary as opcode letters (e.g. "MPNIFV"); empty means the full
	// Table 1 vocabulary.
	Vocabulary string
	// MaxProgramSize bounds the encoded summary size (default 9, as in the
	// paper's main experiment).
	MaxProgramSize int
	// MaxSetSize bounds character-set arguments (default 3).
	MaxSetSize int
	// MaxExampleLength is the bounded-equivalence string length (default 3;
	// sound for memoryless loops by §3's small-model theorems).
	MaxExampleLength int
	// Timeout bounds the search (default 30s).
	Timeout time.Duration
	// Budget, when non-nil, overrides Timeout with caller-controlled
	// cancellation and resource caps shared by the memorylessness check and
	// the synthesis; exhaustion surfaces as ErrNotFound, promptly.
	Budget *engine.Budget
	// Merge enables state merging in every symbolic execution of the
	// pipeline (memorylessness check, synthesis path computation, covering
	// inputs): see symex.Engine.Merge.
	Merge bool
	// NoVN disables the value-numbering rewrite layer (bv.Interner.SetVN)
	// in every solver chain of the pipeline; inverted so the zero Options
	// keeps it on. Verdicts are identical either way — only speed changes —
	// so it does not key the whole-result memo.
	NoVN bool
	// RequireMemoryless refuses to summarise loops that fail the §3
	// memorylessness verification, guaranteeing the summary is equivalent on
	// strings of every length, not just the bounded check.
	RequireMemoryless bool
	// Faults, when non-nil, arms the fault-injection sites of the whole
	// pipeline (memorylessness check and synthesis) under one seeded
	// schedule. Nil (the default) disables injection at zero cost.
	Faults *faultpoint.Registry
	// Cache, when non-nil, attaches the persistent cross-process cache tier:
	// the query store backs every solver-chain cache in the pipeline, and the
	// memo store memoizes whole results (memorylessness verdicts, synthesised
	// summaries) by the loop's canonical structural hash. Nil disables the
	// tier at zero cost.
	Cache *diskcache.Tier
}

// Summary is a synthesised loop summary.
type Summary struct {
	// Encoded is the program in the byte encoding of Table 1.
	Encoded string
	// Readable renders the program as named gadgets.
	Readable string
	// C is the replacement C function.
	C string
	// Memoryless reports whether the §3 verification proved the loop
	// memoryless (when it did, the summary provably agrees on all strings).
	Memoryless bool
	// Direction is the memoryless traversal direction when verified.
	Direction string
	// Elapsed is the synthesis time.
	Elapsed time.Duration
	prog    vocab.Program
}

// Errors.
var (
	// ErrNotFound means no equivalent program exists within the budget.
	ErrNotFound = errors.New("core: no summary found within the budget")
	// ErrNoLoopFunction means the source has no function with the
	// char *f(char *) shape.
	ErrNoLoopFunction = errors.New("core: no char *f(char *) function found")
	// ErrNotMemoryless is returned under RequireMemoryless.
	ErrNotMemoryless = errors.New("core: loop failed memorylessness verification")
)

// lowerNamed parses source and lowers funcName (or the first loop-shaped
// function when funcName is empty).
func lowerNamed(source, funcName string) (*cir.Func, error) {
	return lowerTraced(source, funcName, nil)
}

// lowerTraced is lowerNamed with the front-end phases recorded on the given
// tracer ("phase/parse" and "phase/lower" spans; nil traces nothing).
func lowerTraced(source, funcName string, tr *obs.Tracer) (*cir.Func, error) {
	span := tr.Start("phase/parse")
	file, err := cc.Parse(source)
	span.End()
	if err != nil {
		return nil, err
	}
	var decl *cc.FuncDecl
	if funcName != "" {
		decl = file.Lookup(funcName)
		if decl == nil {
			return nil, fmt.Errorf("core: function %q not found", funcName)
		}
	} else {
		for _, fn := range file.Funcs {
			if fn.Ret.IsPointer() && len(fn.Params) == 1 && fn.Params[0].Type.IsPointer() {
				decl = fn
				break
			}
		}
		if decl == nil {
			return nil, ErrNoLoopFunction
		}
	}
	span = tr.Start("phase/lower", obs.Attr{Key: "func", Val: decl.Name})
	f, err := cir.LowerFunc(decl, file)
	span.End()
	return f, err
}

// Summarize synthesises a summary for funcName in the C source (empty
// funcName picks the first char*(char*) function).
func Summarize(source, funcName string, opts Options) (*Summary, error) {
	f, err := lowerTraced(source, funcName, opts.Budget.Tracer())
	if err != nil {
		return nil, err
	}
	memo := opts.Cache.MemoStore()
	if memo == nil {
		return summarizeLoop(f, opts)
	}

	// Whole-result memo: the loop's canonical hash plus every option that
	// shapes the outcome keys the finished summary, so a structurally known
	// loop — resubmitted in this process or a previous one — returns in O(1).
	// Only deterministic outcomes are stored (a found summary, a clean
	// exhaustive not-found); budget-classified failures always recompute.
	// Concurrent -j drivers summarising the same loop collapse to one run
	// through the store's singleflight.
	key := fmt.Sprintf("sum1:%s:%s:%d:%d:%d:%t:%t", cir.CanonicalHash(f),
		opts.Vocabulary, opts.MaxProgramSize, opts.MaxSetSize, opts.MaxExampleLength,
		opts.RequireMemoryless, opts.Merge)
	var (
		computed bool
		s        *Summary
		serr     error
	)
	raw, cached := memo.Do(opts.Budget, key, func() ([]byte, bool) {
		computed = true
		s, serr = summarizeLoop(f, opts)
		switch {
		case serr == nil:
			return encodeSummary(s), true
		case errors.Is(serr, ErrNotFound) && !errors.Is(serr, engine.ErrBudget):
			return []byte("N"), true
		default:
			return nil, false
		}
	})
	if computed {
		return s, serr
	}
	if cached {
		if s, serr, ok := decodeSummary(raw, f.Name); ok {
			return s, serr
		}
	}
	// Failed shared flight or undecodable entry: compute live.
	return summarizeLoop(f, opts)
}

// encodeSummary renders a found summary for the memo store: the encoded
// program (hex, since the Table 1 encoding uses arbitrary bytes), the
// memorylessness verdict and the traversal direction. Everything else on
// Summary is recomputed from these at decode time.
func encodeSummary(s *Summary) []byte {
	m := "0"
	if s.Memoryless {
		m = "1"
	}
	return []byte("F " + hex.EncodeToString([]byte(s.Encoded)) + " " + m + " " + s.Direction)
}

// decodeSummary rebuilds a Summary from a memo entry, re-deriving the
// readable form and the C replacement (which carries the current function's
// name, not the name the entry was stored under). Corrupt entries report
// ok=false and fall back to a live run.
func decodeSummary(raw []byte, funcName string) (*Summary, error, bool) {
	s := string(raw)
	if s == "N" {
		return nil, ErrNotFound, true
	}
	rest, found := strings.CutPrefix(s, "F ")
	if !found {
		return nil, nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return nil, nil, false
	}
	encBytes, err := hex.DecodeString(fields[0])
	if err != nil {
		return nil, nil, false
	}
	prog, err := vocab.Decode(string(encBytes))
	if err != nil {
		return nil, nil, false
	}
	out := &Summary{
		Encoded:    string(encBytes),
		Readable:   prog.String(),
		C:          vocab.CompileToC(prog, funcName+"_summary"),
		Memoryless: fields[1] == "1",
		prog:       prog,
	}
	if len(fields) >= 3 {
		out.Direction = fields[2]
	}
	return out, nil, true
}

// summarizeLoop is the uncached pipeline: memorylessness check, CEGIS
// synthesis, summary assembly.
func summarizeLoop(f *cir.Func, opts Options) (*Summary, error) {
	report := memoryless.VerifyWith(f, memoryless.VerifyOptions{
		MaxLen: max(3, opts.MaxExampleLength), Budget: opts.Budget, Faults: opts.Faults, Merge: opts.Merge,
		NoVN: opts.NoVN, Disk: opts.Cache.QueryStore(), Memo: opts.Cache.MemoStore(),
	})
	if opts.RequireMemoryless && !report.Memoryless {
		if report.Err != nil {
			// The check was interrupted, not refuted: keep the budget
			// classification (engine.ErrBudget) in the chain so callers can
			// retry with a larger budget.
			return nil, fmt.Errorf("%w: %w", ErrNotMemoryless, report.Err)
		}
		return nil, fmt.Errorf("%w: %s", ErrNotMemoryless, report.Reason)
	}

	copts := cegis.Options{
		MaxProgSize: opts.MaxProgramSize,
		MaxSetLen:   opts.MaxSetSize,
		MaxExSize:   opts.MaxExampleLength,
		Timeout:     opts.Timeout,
		Budget:      opts.Budget,
		Faults:      opts.Faults,
		Merge:       opts.Merge,
		NoVN:        opts.NoVN,
		Disk:        opts.Cache.QueryStore(),
	}
	if opts.Vocabulary != "" {
		v, err := vocab.VocabularyOf(opts.Vocabulary)
		if err != nil {
			return nil, err
		}
		copts.Vocabulary = v
	}
	out, err := cegis.Synthesize(f, copts)
	if err != nil && !errors.Is(err, cegis.ErrTimeout) {
		return nil, err
	}
	if !out.Found {
		if err != nil {
			// Budget exhaustion: still "no summary found" to existing callers
			// (errors.Is ErrNotFound), but with the exhaustion cause in the
			// chain so errors.Is(·, engine.ErrBudget) classifies it retryable.
			return nil, fmt.Errorf("%w: %w", ErrNotFound, err)
		}
		return nil, ErrNotFound
	}
	s := &Summary{
		Encoded:    out.Program.Encode(),
		Readable:   out.Program.String(),
		C:          vocab.CompileToC(out.Program, f.Name+"_summary"),
		Memoryless: report.Memoryless,
		Elapsed:    out.Elapsed,
		prog:       out.Program,
	}
	if report.Memoryless {
		s.Direction = report.Spec.Dir.String()
	}
	return s, nil
}

// Run executes the summary on a Go string, returning the offset the C loop
// would return, with found=false for a NULL return. It panics on summaries
// whose result is the invalid pointer (malformed programs never escape
// Summarize).
func (s *Summary) Run(input string) (offset int, found bool) {
	res := vocab.Run(s.prog, cstr.Terminate(input))
	switch res.Kind {
	case vocab.Null:
		return 0, false
	case vocab.Ptr:
		return res.Off, true
	}
	panic("core: summary produced an invalid pointer")
}

// Program exposes the decoded gadget program.
func (s *Summary) Program() vocab.Program { return s.prog }

// TestInput is a generated test: an input string plus the loop's behaviour
// on it.
type TestInput struct {
	Input string
	// Offset the loop returns (pointer result), meaningful when !Null.
	Offset int
	// Null reports a NULL return.
	Null bool
}

// CoveringInputs generates one concrete input per distinct behaviour of the
// summarised loop on strings up to maxLen — the testing application of §4.3:
// the summary turns the loop into string-solver constraints, and one solver
// model per feasible outcome covers every path without enumerating the
// loop's exponentially many symbolic paths.
func (s *Summary) CoveringInputs(maxLen int) []TestInput {
	bvin := bv.NewInterner()
	cache := qcache.New(bvin)
	sym := strsolver.New(bvin, "s", maxLen)
	outcomes := vocab.RunSymbolic(vocab.Symbolize(bvin, s.prog), sym)
	var out []TestInput
	seen := map[string]bool{}
	for _, o := range outcomes {
		if o.Res.Kind == vocab.Invalid {
			continue // undefined behaviour of the original loop
		}
		st, model := cache.CheckSat(nil, 0, o.Guard)
		if st != sat.Sat {
			continue
		}
		buf := sym.Concretize(model)
		in := cstr.GoString(buf, 0)
		if seen[in] {
			continue
		}
		seen[in] = true
		ti := TestInput{Input: in}
		if o.Res.Kind == vocab.Null {
			ti.Null = true
		} else {
			ti.Offset = o.Res.Off
		}
		out = append(out, ti)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Input < out[j].Input })
	return out
}

// MemorylessReport is the outcome of VerifyMemoryless.
type MemorylessReport struct {
	Memoryless bool
	Direction  string
	Reason     string
	Elapsed    time.Duration
}

// VerifyMemoryless runs the §3 bounded memorylessness verification on the
// named function.
func VerifyMemoryless(source, funcName string) (*MemorylessReport, error) {
	f, err := lowerNamed(source, funcName)
	if err != nil {
		return nil, err
	}
	r := memoryless.Verify(f, 3)
	out := &MemorylessReport{Memoryless: r.Memoryless, Reason: r.Reason, Elapsed: r.Elapsed}
	if r.Memoryless {
		out.Direction = r.Spec.Dir.String()
	}
	return out, nil
}

// CheckEquivalence verifies an encoded summary against the named loop on all
// strings up to maxLen, returning a counterexample input when they differ.
func CheckEquivalence(source, funcName, encoded string, maxLen int) (ok bool, counterexample string, err error) {
	f, err := lowerNamed(source, funcName)
	if err != nil {
		return false, "", err
	}
	prog, err := vocab.Decode(encoded)
	if err != nil {
		return false, "", err
	}
	ok, cex, err := cegis.VerifyEquivalence(f, prog, maxLen)
	if err != nil {
		return false, "", err
	}
	if !ok && cex != nil {
		return false, cstr.GoString(cex, 0), nil
	}
	return ok, "", nil
}

// CheckRefactoring verifies that a rewritten function (typically the loop
// replaced by standard-library calls — strspn, strcspn, strchr, strlen —
// which the symbolic executor models directly) behaves identically to the
// original on all strings up to maxLen and on NULL. It returns a
// distinguishing input when the refactoring is wrong — the validation step
// behind the §4.5 pull requests.
func CheckRefactoring(source, originalName, refactoredName string, maxLen int) (ok bool, counterexample string, err error) {
	a, err := lowerNamed(source, originalName)
	if err != nil {
		return false, "", err
	}
	b, err := lowerNamed(source, refactoredName)
	if err != nil {
		return false, "", err
	}
	ok, cex, err := cegis.VerifyFunctionEquivalence(a, b, maxLen)
	if err != nil {
		return false, "", err
	}
	if !ok && cex != nil {
		return false, cstr.GoString(cex, 0), nil
	}
	return ok, "", nil
}

// IdiomRewrite is the outcome of the loop-idiom compiler pass.
type IdiomRewrite struct {
	// Summary is the synthesised program in readable form.
	Summary string
	// OriginalIR and RewrittenIR are the function's IR before and after the
	// pass (the rewritten form is loop-free, built from string.h calls).
	OriginalIR  string
	RewrittenIR string
}

// RewriteIdiom runs the LoopIdiomRecognize-style pass (§4.4's compiler
// application) on the named function: summarise the loop, compile the
// summary to loop-free calls into the C standard library, and prove the
// replacement equivalent before returning it.
func RewriteIdiom(source, funcName string, timeout time.Duration) (*IdiomRewrite, error) {
	f, err := lowerNamed(source, funcName)
	if err != nil {
		return nil, err
	}
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	r, err := idiom.Rewrite(f, cegis.Options{Timeout: timeout})
	if err != nil {
		return nil, err
	}
	return &IdiomRewrite{
		Summary:     r.Program.String(),
		OriginalIR:  f.String(),
		RewrittenIR: r.Replaced.String(),
	}, nil
}

// Candidate is a loop that survived the automatic filter pipeline of §4.1.1.
type Candidate struct {
	Function string
	Stage    string // the filter that removed it, or "candidate"
}

// FindCandidates runs the automatic filter pipeline over every function in
// the source, reporting each loop's fate.
func FindCandidates(source string) ([]Candidate, error) {
	file, err := cc.Parse(source)
	if err != nil {
		return nil, err
	}
	funcs, err := cir.LowerFile(file)
	if err != nil {
		return nil, err
	}
	for _, f := range funcs {
		cir.Mem2Reg(f)
	}
	infos, _ := cir.ClassifyLoops(funcs)
	stageNames := map[cir.FilterStage]string{
		cir.StageInitial:    "outer-loop",
		cir.StageInnerOK:    "pointer-call",
		cir.StagePtrCallOK:  "array-write",
		cir.StageNoWritesOK: "multiple-reads",
		cir.StageCandidate:  "candidate",
	}
	var out []Candidate
	for _, info := range infos {
		out = append(out, Candidate{Function: info.Func.Name, Stage: stageNames[info.Stage]})
	}
	return out, nil
}
