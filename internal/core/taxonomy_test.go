package core

import (
	"context"
	"errors"
	"testing"

	"stringloops/internal/cegis"
	"stringloops/internal/engine"
	"stringloops/internal/memoryless"
	"stringloops/internal/symex"
)

// TestBudgetSentinelTaxonomy pins the error taxonomy: every package-level
// budget/timeout sentinel classifies as engine.ErrBudget, so one errors.Is
// check at any layer recognises exhaustion no matter which layer hit it.
func TestBudgetSentinelTaxonomy(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"symex.ErrTimeout", symex.ErrTimeout},
		{"symex.ErrPathLimit", symex.ErrPathLimit},
		{"cegis.ErrTimeout", cegis.ErrTimeout},
		{"memoryless.ErrTimeout", memoryless.ErrTimeout},
	} {
		if !errors.Is(tc.err, engine.ErrBudget) {
			t.Errorf("%s does not wrap engine.ErrBudget", tc.name)
		}
	}
}

// TestSummarizeBudgetErrorChain walks a real exhaustion from the core API
// surface down: a cancelled budget must surface as ErrNotFound (the
// compatibility contract) while keeping the cegis and engine classification
// in the chain.
func TestSummarizeBudgetErrorChain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Summarize(figure1, "", Options{Budget: engine.NewBudget(ctx, engine.Limits{})})
	if err == nil {
		t.Fatal("cancelled Summarize returned nil error")
	}
	for _, want := range []struct {
		name string
		err  error
	}{
		{"core.ErrNotFound", ErrNotFound},
		{"cegis.ErrTimeout", cegis.ErrTimeout},
		{"engine.ErrBudget", engine.ErrBudget},
	} {
		if !errors.Is(err, want.err) {
			t.Errorf("errors.Is(%v, %s) = false", err, want.name)
		}
	}
}

// TestRequireMemorylessBudgetErrorChain: when the memorylessness check itself
// is interrupted under RequireMemoryless, the error must stay classified as
// budget exhaustion (retryable), not as a refutation.
func TestRequireMemorylessBudgetErrorChain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Summarize(figure1, "", Options{
		Budget:            engine.NewBudget(ctx, engine.Limits{}),
		RequireMemoryless: true,
	})
	if err == nil {
		t.Fatal("cancelled Summarize returned nil error")
	}
	if !errors.Is(err, ErrNotMemoryless) {
		t.Errorf("errors.Is(%v, ErrNotMemoryless) = false", err)
	}
	if !errors.Is(err, engine.ErrBudget) {
		t.Errorf("errors.Is(%v, engine.ErrBudget) = false — an interrupted check must classify as exhaustion", err)
	}
}
