package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"path/filepath"
	"testing"

	"stringloops/internal/diskcache"
	"stringloops/internal/engine"
	"stringloops/internal/faultpoint"
	"stringloops/internal/loopdb"
	"stringloops/internal/obs"
)

// chaosSeeds is the seed-sweep width of the chaos soak. The default sweep
// over the 12-program corpus gives 12 × 17 = 204 distinct fault schedules;
// the CI chaos-smoke lane runs it explicitly, `-short` shrinks it for the
// ordinary tier-1 run.
var chaosSeeds = flag.Int("chaos.seeds", 17, "fault schedules per corpus loop in the chaos soak")

// chaosLoops picks one representative loop per corpus program: the soak
// wants breadth across loop shapes (including unsupported and
// non-memoryless ones), not 115 near-duplicates.
func chaosLoops() []loopdb.Loop {
	var out []loopdb.Loop
	seen := map[string]bool{}
	for _, l := range loopdb.Corpus() {
		if seen[l.Program] {
			continue
		}
		seen[l.Program] = true
		out = append(out, l)
	}
	return out
}

// chaosRegistry builds the per-item registry for one (sweep seed, item)
// pair: every site armed, rates chosen so schedules regularly hit several
// sites per run without drowning the pipeline.
func chaosRegistry(seed uint64, item int) *faultpoint.Registry {
	return faultpoint.New(faultpoint.Config{
		Seed: seed ^ faultpointItemSalt(item),
		Rates: map[faultpoint.Site]float64{
			faultpoint.SatUnknown:       0.05,
			faultpoint.SatConflictStorm: 0.05,
			faultpoint.BVNodeExhaust:    0.0002,
			faultpoint.QCacheMiss:       0.25,
			faultpoint.SymexForkFail:    0.05,
			faultpoint.SymexPanic:       0.03,
			faultpoint.CegisReject:      0.10,
			faultpoint.DiskCacheIO:      0.25,
		},
	})
}

// faultpointItemSalt decorrelates per-item schedules within one sweep seed
// (same mixer as the registry so the salt is well spread).
func faultpointItemSalt(item int) uint64 {
	x := uint64(item) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// chaosItems builds the per-seed resilient batch. With a non-empty cacheDir
// every item additionally runs against its own persistent tier under it,
// opened with the item's fault registry so the DiskCacheIO site is armed on
// the tier's warm-start loads and on the close()-time saves. Per-item
// directories keep cache state a pure function of the item's own schedule
// (faultpoint streams are per-site counters, so arming the tier shifts no
// other site's draws), preserving replay determinism across worker counts.
func chaosItems(t *testing.T, seed uint64, loops []loopdb.Loop, cacheDir string) ([]ResilientItem, func()) {
	t.Helper()
	items := make([]ResilientItem, len(loops))
	var tiers []*diskcache.Tier
	for i, l := range loops {
		// Odd seeds run the state-merging executor, even seeds the
		// enumerating one: both schedules must satisfy the same replay
		// and typed-outcome contracts, with merging exercised under the
		// full fault storm.
		opts := Options{Faults: chaosRegistry(seed, i), Merge: seed%2 == 1}
		if cacheDir != "" {
			tier, err := diskcache.Open(filepath.Join(cacheDir, fmt.Sprintf("item%02d", i)), opts.Faults)
			if err != nil {
				t.Fatalf("open chaos tier: %v", err)
			}
			opts.Cache = tier
			tiers = append(tiers, tier)
		}
		items[i] = ResilientItem{Source: l.Source, Func: l.FuncName, Opts: ResilientOptions{
			Options: opts,
			// Pure resource limits: no wall clock anywhere, so a schedule's
			// outcome is a function of the seed alone, not machine speed.
			Limits:      engine.Limits{Conflicts: 5000, Forks: 20000, Nodes: 500000},
			MaxLimits:   engine.Limits{Conflicts: 20000, Forks: 80000, Nodes: 2000000},
			MaxAttempts: 2,
			Seed:        seed,
		}}
	}
	return items, func() {
		for _, tier := range tiers {
			// A DiskCacheIO firing silently skips the save — exactly the
			// degradation under test — so Close errors are real I/O trouble.
			if err := tier.Close(); err != nil {
				t.Errorf("chaos tier close: %v", err)
			}
		}
	}
}

// TestChaosSoak drives the resilient batch path over one loop per corpus
// program under seeded fault storms: every item must come back as a typed
// outcome (no escaped panic — an escape would crash the test binary — and
// no RungFailed, because the smoke floor needs nothing the faults can
// break), and the same seed must reproduce bit-identical outcomes
// regardless of worker count.
func TestChaosSoak(t *testing.T) {
	loops := chaosLoops()
	if len(loops) < 10 {
		t.Fatalf("corpus has %d programs, expected the full 13", len(loops))
	}
	seeds := *chaosSeeds
	if testing.Short() {
		seeds = 2
	}
	schedules := 0
	rungCount := map[Rung]int{}
	var diskFired uint64
	for s := 0; s < seeds; s++ {
		seed := uint64(s)*0x9e3779b9 + 1
		// Separate fresh cache roots per sweep: both start cold, so the
		// parallel and serial runs see identical tier state end to end.
		pItems, pClose := chaosItems(t, seed, loops, t.TempDir())
		qItems, qClose := chaosItems(t, seed, loops, t.TempDir())
		parallel := SummarizeAllResilient(pItems, 4)
		serial := SummarizeAllResilient(qItems, 1)
		pClose()
		qClose()
		for i := range pItems {
			diskFired += pItems[i].Opts.Faults.Fired(faultpoint.DiskCacheIO)
		}
		for i := range parallel {
			schedules++
			p, q := parallel[i], serial[i]
			rungCount[p.Rung]++

			// Typed outcome: a reached rung always carries its payload.
			switch p.Rung {
			case RungFull:
				if p.Summary == nil {
					t.Errorf("seed %d %s: full rung without summary", seed, loops[i].Name)
				}
			case RungMemoryless:
				if p.Memoryless == nil {
					t.Errorf("seed %d %s: memoryless rung without report", seed, loops[i].Name)
				}
			case RungCovering:
				if p.Covering == nil {
					t.Errorf("seed %d %s: covering rung without inputs", seed, loops[i].Name)
				}
			case RungSmoke:
				if p.Smoke == nil {
					t.Errorf("seed %d %s: smoke rung without result", seed, loops[i].Name)
				}
			default:
				t.Errorf("seed %d %s: rung failed (%v) — the smoke floor must always hold", seed, loops[i].Name, p.Err)
			}
			// Injected panics must surface as recorded attempts, never as
			// process crashes, and errors must stay classified.
			for _, a := range p.Attempts {
				if a.Err == nil {
					continue
				}
				if a.Panicked {
					var pe *PanicError
					if !errors.As(a.Err, &pe) {
						t.Errorf("seed %d %s: panicked attempt without PanicError: %v", seed, loops[i].Name, a.Err)
					}
				}
			}

			// Replay determinism: same seed, different worker count.
			if p.Rung != q.Rung {
				t.Errorf("seed %d %s: rung %v (4 workers) vs %v (serial)", seed, loops[i].Name, p.Rung, q.Rung)
				continue
			}
			if (p.Summary == nil) != (q.Summary == nil) ||
				(p.Summary != nil && p.Summary.Encoded != q.Summary.Encoded) {
				t.Errorf("seed %d %s: summaries differ across worker counts", seed, loops[i].Name)
			}
			if len(p.Attempts) != len(q.Attempts) {
				t.Errorf("seed %d %s: %d attempts vs %d", seed, loops[i].Name, len(p.Attempts), len(q.Attempts))
				continue
			}
			for j := range p.Attempts {
				pa, qa := p.Attempts[j], q.Attempts[j]
				if pa.Rung != qa.Rung || pa.Limits != qa.Limits || pa.Panicked != qa.Panicked {
					t.Errorf("seed %d %s attempt %d: %+v vs %+v", seed, loops[i].Name, j, pa, qa)
				}
				if (pa.Err == nil) != (qa.Err == nil) ||
					(pa.Err != nil && !pa.Panicked && pa.Err.Error() != qa.Err.Error()) {
					t.Errorf("seed %d %s attempt %d: err %v vs %v", seed, loops[i].Name, j, pa.Err, qa.Err)
				}
			}
		}
	}
	t.Logf("chaos soak: %d schedules, rung distribution: full=%d memoryless=%d covering=%d smoke=%d",
		schedules, rungCount[RungFull], rungCount[RungMemoryless], rungCount[RungCovering], rungCount[RungSmoke])
	if !testing.Short() && schedules < 200 {
		t.Errorf("only %d fault schedules exercised, want >= 200", schedules)
	}
	// The sweep must actually degrade somewhere: a soak where every schedule
	// lands on RungFull never exercised the ladder.
	if rungCount[RungFull] == schedules {
		t.Error("no schedule degraded below the full rung — fault rates too low to test anything")
	}
	// Every item draws the DiskCacheIO site at least four times (two
	// warm-start loads, two close-time saves), so at rate 0.25 a soak where
	// it never fired means the tier was not actually armed.
	if diskFired == 0 {
		t.Error("DiskCacheIO never fired — the persistent tier is not in the fault storm")
	}
}

// chaosTracedItems is chaosItems with a fresh deterministic tracer per item,
// so each item's event stream is a pure function of its fault schedule.
func chaosTracedItems(t *testing.T, seed uint64, loops []loopdb.Loop) ([]ResilientItem, []*obs.Tracer, func()) {
	items, closeTiers := chaosItems(t, seed, loops, t.TempDir())
	tracers := make([]*obs.Tracer, len(items))
	for i := range items {
		tracers[i] = obs.NewDeterministic()
		items[i].Opts.Tracer = tracers[i]
	}
	return items, tracers, closeTiers
}

// TestChaosTraceReplay extends the soak to the observability layer: under
// the deterministic logical clock, the serialized per-item event stream
// (rung spans, phase spans, attributes, logical timestamps) must be
// bit-identical across worker counts for the same fault schedule.
func TestChaosTraceReplay(t *testing.T) {
	loops := chaosLoops()
	seeds := 3
	if testing.Short() {
		seeds = 1
	}
	for s := 0; s < seeds; s++ {
		seed := uint64(s)*0x9e3779b9 + 1
		pItems, pTracers, pClose := chaosTracedItems(t, seed, loops)
		qItems, qTracers, qClose := chaosTracedItems(t, seed, loops)
		SummarizeAllResilient(pItems, 4)
		SummarizeAllResilient(qItems, 1)
		pClose()
		qClose()
		for i := range loops {
			pj, err := json.Marshal(pTracers[i].Events())
			if err != nil {
				t.Fatal(err)
			}
			qj, err := json.Marshal(qTracers[i].Events())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pj, qj) {
				t.Errorf("seed %d %s: event streams differ across worker counts\n4 workers: %s\nserial:    %s",
					seed, loops[i].Name, pj, qj)
			}
			if len(pTracers[i].Events()) == 0 {
				t.Errorf("seed %d %s: no spans recorded — the ladder is not instrumented", seed, loops[i].Name)
			}
		}
	}
}
