package diffuzz

import (
	"sync"
	"testing"
	"time"
)

// fuzzTargets caches prepared targets per seed: the fuzzer mutates the input
// buffer far more often than the seed, and preparation (lower + bounded
// synthesis) is the expensive part. The cache resets when it grows past a
// bound so a long fuzzing campaign can't hold every target ever seen.
var (
	fuzzMu      sync.Mutex
	fuzzTargets = map[uint64]*fuzzEntry{}
)

type fuzzEntry struct {
	target  *Target
	finding *Finding
}

func fuzzTargetFor(seed uint64) *fuzzEntry {
	fuzzMu.Lock()
	defer fuzzMu.Unlock()
	if e, ok := fuzzTargets[seed]; ok {
		return e
	}
	if len(fuzzTargets) > 2048 {
		fuzzTargets = map[uint64]*fuzzEntry{}
	}
	o := Options{SynthTimeout: 100 * time.Millisecond}
	t, f := TargetForSeed(seed, &o)
	e := &fuzzEntry{target: t, finding: f}
	fuzzTargets[seed] = e
	return e
}

// FuzzDifferential is the native-fuzzing entry point: seed selects a
// generated program, the byte payload is the (clamped, NUL-terminated)
// input buffer, and the three executors must agree.
func FuzzDifferential(f *testing.F) {
	f.Add(uint64(1), []byte("  ab"))
	f.Add(uint64(2), []byte(""))
	f.Add(uint64(7), []byte("a\x00b"))
	f.Add(uint64(13), []byte("0099z"))
	f.Add(uint64(42), []byte("\xc3\x7f "))
	f.Add(uint64(1001), []byte("=:/#"))
	f.Fuzz(func(t *testing.T, seed uint64, raw []byte) {
		e := fuzzTargetFor(seed)
		if e.finding != nil {
			t.Fatalf("target preparation failed:\n%s", e.finding)
		}
		for _, fd := range CheckSeedInput(e.target, raw, 8) {
			t.Errorf("divergence:\n%s", fd)
		}
	})
}
