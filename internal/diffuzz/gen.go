// Package diffuzz is a differential fuzzer for the string-loop pipeline. It
// generates random C string loops inside the subset the front end supports,
// runs each loop on random NUL-terminated buffers through three executors —
// the concrete cir interpreter (ground truth), symbolic execution replayed on
// the concrete input, and, when synthesis succeeds, the synthesized gadget
// summary — and reports any disagreement as a structured, minimized finding.
package diffuzz

import (
	"fmt"
	"strings"
)

// rng is a splitmix64 generator: tiny, seedable, and stable across Go
// releases (math/rand's stream is not guaranteed between versions, and seed
// reproducibility is the whole point of the fuzzer).
type rng struct{ x uint64 }

func newRng(seed uint64) *rng { return &rng{x: seed} }

func (r *rng) next() uint64 {
	r.x += 0x9e3779b97f4a7c15
	z := r.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// pct is true with probability p percent.
func (r *rng) pct(p int) bool { return r.intn(100) < p }

func pickByte(r *rng, xs []byte) byte     { return xs[r.intn(len(xs))] }
func pickStr(r *rng, xs []string) string  { return xs[r.intn(len(xs))] }

// AtomKind is the shape of one condition atom.
type AtomKind int

// Atom kinds.
const (
	// AtomCmp compares the current character against a constant: *s OP 'c'.
	AtomCmp AtomKind = iota
	// AtomCtype applies a ctype.h classifier: isdigit(*s), !isspace(*s), ...
	AtomCtype
	// AtomTruth tests the current character for non-zero: *s.
	AtomTruth
)

// Atom is one leaf of a loop condition.
type Atom struct {
	Kind AtomKind
	Op   string // AtomCmp: one of == != < <= > >=
	Ch   byte   // AtomCmp: the constant character
	Fn   string // AtomCtype: classifier name
	Neg  bool   // AtomCtype: negated (!isdigit(*s))
}

// Cond is a conjunction/disjunction chain of atoms; Conns[i] joins
// Atoms[i] and Atoms[i+1] with "&&" or "||" (C precedence applies).
type Cond struct {
	Atoms []Atom
	Conns []string
}

// LoopForm selects the loop statement.
type LoopForm int

// Loop forms.
const (
	FormWhile LoopForm = iota
	FormFor
	FormDoWhile
)

// RetKind selects the return expression after the loop.
type RetKind int

// Return kinds.
const (
	// RetCursor returns the cursor (s, or s+i in index form).
	RetCursor RetKind = iota
	// RetNull returns 0.
	RetNull
	// RetCondNull returns the cursor if the current character is non-zero,
	// else NULL — the strchr miss convention.
	RetCondNull
	// RetAcc returns the last-match accumulator (requires Acc).
	RetAcc
)

// Prog is the generator's mini-AST: one string loop in the supported C
// subset. It is the unit the minimizer shrinks — every field removal or
// simplification still renders to a valid program.
type Prog struct {
	NullGuard bool     // if (!s) return 0;
	Idx       bool     // index form (s[i], i++) instead of pointer form (*s, s++)
	Acc       bool     // char *last = 0; ... if (CUR == AccCh) last = CUR_PTR;
	AccCh     byte     // accumulator match character
	PreSkip   *Atom    // optional pre-loop skip: if (ATOM) advance;
	Form      LoopForm
	Cond      Cond
	Ret       RetKind
	Octal     bool // render non-printable char constants as octal escapes
}

// Clone deep-copies p so the minimizer can mutate freely.
func (p *Prog) Clone() *Prog {
	q := *p
	q.Cond.Atoms = append([]Atom(nil), p.Cond.Atoms...)
	q.Cond.Conns = append([]string(nil), p.Cond.Conns...)
	if p.PreSkip != nil {
		a := *p.PreSkip
		q.PreSkip = &a
	}
	return &q
}

// alphabet is the pool of constant characters: common delimiters, class
// boundaries, and a couple of bytes ≥ 0x7f to exercise char signedness.
var alphabet = []byte{
	' ', '\t', '\n', 'a', 'b', 'z', 'A', 'Z', '0', '9',
	'/', '=', ':', '.', '#', '-', '_', 0, 0x7f, 0xc3,
}

var ctypeFns = []string{
	"isdigit", "isspace", "isblank", "isupper", "islower", "isalpha", "isalnum",
}

var cmpOps = []string{"==", "==", "!=", "!=", "<", "<=", ">", ">="}

// Generate builds a random program from seed. The same seed always yields
// the same program.
func Generate(seed uint64) *Prog {
	r := newRng(seed)
	r.next() // scramble small seeds apart
	p := &Prog{
		NullGuard: r.pct(50),
		Idx:       r.pct(30),
		Octal:     r.pct(30),
	}
	switch {
	case r.pct(50):
		p.Form = FormWhile
	case r.pct(60):
		p.Form = FormFor
	default:
		p.Form = FormDoWhile
	}
	if r.pct(20) {
		p.Acc = true
		p.AccCh = pickByte(r, alphabet)
	}
	if r.pct(25) {
		a := genAtom(r)
		p.PreSkip = &a
	}

	n := 1
	if r.pct(55) {
		n++
		if r.pct(35) {
			n++
		}
	}
	seenTruth := false
	for i := 0; i < n; i++ {
		a := genAtom(r)
		for a.Kind == AtomTruth && seenTruth {
			a = genAtom(r)
		}
		if a.Kind == AtomTruth {
			seenTruth = true
		}
		p.Cond.Atoms = append(p.Cond.Atoms, a)
		if i > 0 {
			conn := "&&"
			if r.pct(40) {
				conn = "||"
			}
			p.Cond.Conns = append(p.Cond.Conns, conn)
		}
	}

	switch {
	case p.Acc && r.pct(70):
		p.Ret = RetAcc
	case r.pct(60):
		p.Ret = RetCursor
	case r.pct(70):
		p.Ret = RetCondNull
	default:
		p.Ret = RetNull
	}
	return p
}

func genAtom(r *rng) Atom {
	switch {
	case r.pct(55):
		return Atom{Kind: AtomCmp, Op: pickStr(r, cmpOps), Ch: pickByte(r, alphabet)}
	case r.pct(55):
		return Atom{Kind: AtomCtype, Fn: pickStr(r, ctypeFns), Neg: r.pct(35)}
	default:
		return Atom{Kind: AtomTruth}
	}
}

// charLit renders c as a C character literal. Printables stay literal;
// non-printables use hex or (when octal is set) octal escapes, so the
// generator also exercises both escape paths of the lexer.
func charLit(c byte, octal bool) string {
	switch c {
	case 0:
		return `'\0'`
	case '\t':
		return `'\t'`
	case '\n':
		return `'\n'`
	case '\r':
		return `'\r'`
	case '\'':
		return `'\''`
	case '\\':
		return `'\\'`
	}
	if c >= 32 && c < 127 {
		return fmt.Sprintf("'%c'", c)
	}
	if octal {
		return fmt.Sprintf(`'\%03o'`, c)
	}
	return fmt.Sprintf(`'\x%02x'`, c)
}

// cur is the current-character expression for the program's form.
func (p *Prog) cur() string {
	if p.Idx {
		return "s[i]"
	}
	return "*s"
}

// cursor is the current-position pointer expression.
func (p *Prog) cursor() string {
	if p.Idx {
		return "s + i"
	}
	return "s"
}

// advance is the step statement (without trailing semicolon).
func (p *Prog) advance() string {
	if p.Idx {
		return "i++"
	}
	return "s++"
}

func (p *Prog) atomSrc(a Atom) string {
	switch a.Kind {
	case AtomCmp:
		return fmt.Sprintf("%s %s %s", p.cur(), a.Op, charLit(a.Ch, p.Octal))
	case AtomCtype:
		if a.Neg {
			return fmt.Sprintf("!%s(%s)", a.Fn, p.cur())
		}
		return fmt.Sprintf("%s(%s)", a.Fn, p.cur())
	default:
		return p.cur()
	}
}

func (p *Prog) condSrc() string {
	var sb strings.Builder
	for i, a := range p.Cond.Atoms {
		if i > 0 {
			sb.WriteString(" " + p.Cond.Conns[i-1] + " ")
		}
		sb.WriteString(p.atomSrc(a))
	}
	return sb.String()
}

// Source renders p to C. The output always parses and lowers; a front-end
// rejection of generated source is itself a finding.
func (p *Prog) Source() string {
	var b strings.Builder
	b.WriteString("char *f(char *s) {\n")
	if p.NullGuard {
		b.WriteString("    if (!s) return 0;\n")
	}
	if p.Idx {
		b.WriteString("    int i = 0;\n")
	}
	if p.Acc {
		b.WriteString("    char *last = 0;\n")
	}
	if p.PreSkip != nil {
		fmt.Fprintf(&b, "    if (%s) %s;\n", p.atomSrc(*p.PreSkip), p.advance())
	}

	body := ""
	if p.Acc {
		body = fmt.Sprintf("if (%s == %s) last = %s; ",
			p.cur(), charLit(p.AccCh, p.Octal), p.cursor())
	}
	cond := p.condSrc()
	switch p.Form {
	case FormWhile:
		fmt.Fprintf(&b, "    while (%s) { %s%s; }\n", cond, body, p.advance())
	case FormFor:
		if body == "" {
			fmt.Fprintf(&b, "    for (; %s; %s)\n        ;\n", cond, p.advance())
		} else {
			fmt.Fprintf(&b, "    for (; %s; %s) { %s}\n", cond, p.advance(), body)
		}
	case FormDoWhile:
		fmt.Fprintf(&b, "    do { %s%s; } while (%s);\n", body, p.advance(), cond)
	}

	switch p.Ret {
	case RetCursor:
		fmt.Fprintf(&b, "    return %s;\n", p.cursor())
	case RetNull:
		b.WriteString("    return 0;\n")
	case RetCondNull:
		fmt.Fprintf(&b, "    return %s ? %s : 0;\n", p.cur(), p.cursor())
	case RetAcc:
		b.WriteString("    return last;\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// interestingBytes collects the characters the program is sensitive to:
// every compared constant, its neighbours, and classifier boundaries.
func (p *Prog) interestingBytes() []byte {
	var out []byte
	add := func(c byte) { out = append(out, c) }
	atom := func(a Atom) {
		switch a.Kind {
		case AtomCmp:
			add(a.Ch)
			add(a.Ch + 1)
			if a.Ch > 0 {
				add(a.Ch - 1)
			}
		case AtomCtype:
			for _, c := range []byte{'0', '9', 'A', 'Z', 'a', 'z', ' ', '\t', '\n', '_'} {
				add(c)
			}
		}
	}
	for _, a := range p.Cond.Atoms {
		atom(a)
	}
	if p.PreSkip != nil {
		atom(*p.PreSkip)
	}
	if p.Acc {
		add(p.AccCh)
	}
	if len(out) == 0 {
		out = []byte{'a', ' ', '0'}
	}
	return out
}

// GenInput builds one random NUL-terminated buffer (content length up to
// maxLen) biased towards the program's interesting characters. The returned
// slice always ends with the terminator; interior zero bytes are possible
// (buffers longer than their string).
func GenInput(r *rng, p *Prog, maxLen int) []byte {
	interesting := p.interestingBytes()
	n := r.intn(maxLen + 1)
	buf := make([]byte, 0, n+1)
	for i := 0; i < n; i++ {
		switch {
		case r.pct(70):
			buf = append(buf, pickByte(r, interesting))
		case r.pct(7):
			buf = append(buf, 0)
		default:
			buf = append(buf, byte(1+r.intn(255)))
		}
	}
	return append(buf, 0)
}
