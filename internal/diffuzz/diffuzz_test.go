package diffuzz

import (
	"context"
	"fmt"
	"testing"
	"time"

	"stringloops/internal/cc"
	"stringloops/internal/cir"
	"stringloops/internal/engine"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 7, 42, 1 << 40} {
		a := Generate(seed).Source()
		b := Generate(seed).Source()
		if a != b {
			t.Fatalf("seed %d: two generations differ:\n%s\nvs\n%s", seed, a, b)
		}
	}
	ra, rb := newRng(9), newRng(9)
	p := Generate(9)
	for i := 0; i < 20; i++ {
		ia, ib := GenInput(ra, p, 6), GenInput(rb, p, 6)
		if string(ia) != string(ib) {
			t.Fatalf("input stream not deterministic at %d: %q vs %q", i, ia, ib)
		}
	}
}

// TestGeneratedProgramsLower pins the generator's contract with the front
// end: everything it emits must parse and lower.
func TestGeneratedProgramsLower(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		src := Generate(seed).Source()
		file, err := cc.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		if _, err := cir.LowerFile(file); err != nil {
			t.Fatalf("seed %d: lower: %v\n%s", seed, err, src)
		}
	}
}

// TestKnownLoopAllExecutorsAgree drives a hand-built skip-spaces program
// through the full pipeline: synthesis must find its summary, the loop must
// verify memoryless, and all three executors must agree — including on a
// buffer longer than the bounded-verification size, which only the
// small-model argument licenses.
func TestKnownLoopAllExecutorsAgree(t *testing.T) {
	p := &Prog{
		Form: FormWhile,
		Cond: Cond{Atoms: []Atom{{Kind: AtomCmp, Op: "==", Ch: ' '}}},
		Ret:  RetCursor,
	}
	o := Options{SynthTimeout: 5 * time.Second}
	tgt, f := PrepareTarget(77, p, &o)
	if f != nil {
		t.Fatalf("preparation finding: %s", f)
	}
	if !tgt.HasSummary {
		t.Fatalf("no summary synthesized for skip-spaces")
	}
	if !tgt.Memoryless {
		t.Fatalf("skip-spaces not verified memoryless")
	}
	for _, in := range [][]byte{nil, {0}, []byte("  ab\x00"), []byte("      end\x00")} {
		if finds := checkInput(tgt, in, DefaultExecutors()); len(finds) > 0 {
			t.Fatalf("input %q: unexpected findings: %v", in, finds[0])
		}
	}
}

// TestDoWhileShortBufferDomainGate pins a divergence the fuzzer found on
// early development runs (seeds 163/344/468): a do-while whose condition is
// always false reads s[1] unconditionally, which is UB on a capacity-1
// buffer but in-bounds on every buffer of the bounded-verification
// capacity — so CEGIS correctly accepts "increment; return" as the summary.
// The summary executor must not compare such a (non-memoryless-verified)
// summary outside its verified capacity, while symex must still agree with
// the interpreter that the capacity-1 run is UB.
func TestDoWhileShortBufferDomainGate(t *testing.T) {
	p := &Prog{
		Form: FormDoWhile,
		Cond: Cond{
			Atoms: []Atom{{Kind: AtomCtype, Fn: "isupper"}, {Kind: AtomCtype, Fn: "isspace"}},
			Conns: []string{"&&"},
		},
		Ret: RetCursor,
	}
	o := Options{SynthTimeout: 5 * time.Second}
	tgt, f := PrepareTarget(163, p, &o)
	if f != nil {
		t.Fatalf("preparation finding: %s", f)
	}
	short := []byte{0}
	want, ok, err := runConcrete(tgt, short)
	if err != nil || !ok {
		t.Fatalf("concrete run inconclusive: ok=%v err=%v", ok, err)
	}
	if want.Kind != RUB {
		t.Fatalf("capacity-1 buffer should be UB in the interpreter, got %s", want)
	}
	if tgt.HasSummary && !tgt.Memoryless {
		if _, ok, _ := (summaryExecutor{}).Run(tgt, short); ok {
			t.Fatalf("summary compared outside its verified capacity")
		}
	}
	for _, in := range [][]byte{short, {'A', ' ', 0}, {'A', 'B', ' ', 0}} {
		if finds := checkInput(tgt, in, DefaultExecutors()); len(finds) > 0 {
			t.Fatalf("input %q: unexpected finding:\n%s", in, finds[0])
		}
	}
}

func TestRunCleanOnShippedCode(t *testing.T) {
	rep := Run(Options{Seeds: 40, Inputs: 6, SynthTimeout: 150 * time.Millisecond, Jobs: 2})
	if rep.Programs != 40 {
		t.Fatalf("checked %d of 40 programs", rep.Programs)
	}
	if rep.Checks == 0 {
		t.Fatalf("no checks performed")
	}
	for _, f := range rep.Findings {
		t.Errorf("finding on shipped code:\n%s", f)
	}
}

// offByOneExec deliberately corrupts the ground truth — any far pointer
// result is shifted back by one — standing in for a semantics bug in an
// executor. The harness must both catch it and minimize it.
type offByOneExec struct{}

func (offByOneExec) Name() string { return "buggy" }

func (offByOneExec) Run(tg *Target, input []byte) (Result, bool, error) {
	r, ok, err := runConcrete(tg, input)
	if err != nil || !ok {
		return r, ok, err
	}
	if r.Kind == RPtr && r.Off >= 2 {
		r.Off--
	}
	return r, ok, nil
}

func TestInjectedBugCaughtAndMinimized(t *testing.T) {
	rep := Run(Options{
		Seeds:        40,
		Inputs:       8,
		SynthTimeout: -time.Millisecond, // summary stage off: isolate the injected bug
		Executors:    []Executor{offByOneExec{}},
		Jobs:         2,
	})
	if len(rep.Findings) == 0 {
		t.Fatalf("injected off-by-one not caught over %d programs / %d checks", rep.Programs, rep.Checks)
	}
	for _, f := range rep.Findings {
		if f.Stage != "buggy" || f.Kind != "divergence" {
			t.Fatalf("unexpected finding %s/%s:\n%s", f.Stage, f.Kind, f)
		}
		if !f.Minimized {
			t.Fatalf("finding not minimized:\n%s", f)
		}
		// The minimized witness must still be a valid program that still
		// exhibits the divergence, and the input should have shrunk to a
		// couple of characters (offset ≥ 2 needs at least two).
		file, err := cc.Parse(f.Source)
		if err != nil {
			t.Fatalf("minimized source does not parse: %v\n%s", err, f.Source)
		}
		if _, err := cir.LowerFile(file); err != nil {
			t.Fatalf("minimized source does not lower: %v\n%s", err, f.Source)
		}
		if !f.NullInput && len(f.Input) > 4 {
			t.Errorf("input not minimized (len %d): %q\n%s", len(f.Input), f.Input, f.Source)
		}
	}
}

// panicExec stands in for an executor with a crash bug: the harness must
// recover it into a finding instead of dying.
type panicExec struct{}

func (panicExec) Name() string { return "crashy" }

func (panicExec) Run(tg *Target, input []byte) (Result, bool, error) {
	if input != nil && len(input) > 2 {
		panic(fmt.Sprintf("crashy: cannot handle %d bytes", len(input)))
	}
	return runConcrete(tg, input)
}

func TestPanicRecoveredAsFinding(t *testing.T) {
	rep := Run(Options{
		Seeds:        5,
		Inputs:       6,
		SynthTimeout: -time.Millisecond,
		Executors:    []Executor{panicExec{}},
		NoMinimize:   true,
		Jobs:         1,
	})
	found := false
	for _, f := range rep.Findings {
		if f.Stage == "crashy" && f.Kind == "panic" {
			found = true
		}
	}
	if !found {
		t.Fatalf("panicking executor produced no panic finding (findings: %d)", len(rep.Findings))
	}
}

func TestRunBudgetSkipsSeeds(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := engine.NewBudget(ctx, engine.Limits{})
	rep := Run(Options{Seeds: 10, Budget: b, Jobs: 1})
	if rep.Skipped != 10 || rep.Programs != 0 {
		t.Fatalf("expired budget: got %d checked / %d skipped, want 0/10", rep.Programs, rep.Skipped)
	}
}

func TestFindingReproducesFromSeed(t *testing.T) {
	// A finding must be reproducible from (seed, input) alone: re-deriving
	// the program from the recorded seed and re-checking the recorded input
	// against the same buggy executor re-fires the divergence.
	rep := Run(Options{
		Seeds:        40,
		Inputs:       8,
		SynthTimeout: -time.Millisecond,
		Executors:    []Executor{offByOneExec{}},
		NoMinimize:   true,
		Jobs:         2,
	})
	if len(rep.Findings) == 0 {
		t.Skip("no finding to reproduce (covered by TestInjectedBugCaughtAndMinimized)")
	}
	f := rep.Findings[0]
	o := Options{SynthTimeout: -time.Millisecond}
	tgt, pf := TargetForSeed(f.Seed, &o)
	if pf != nil {
		t.Fatalf("re-preparing seed %d failed: %s", f.Seed, pf)
	}
	if tgt.Source != f.Source {
		t.Fatalf("seed %d re-derives different source:\n%s\nvs recorded\n%s", f.Seed, tgt.Source, f.Source)
	}
	var in []byte
	if !f.NullInput {
		in = f.Input
	}
	again := checkInput(tgt, in, []Executor{offByOneExec{}})
	if len(again) == 0 {
		t.Fatalf("finding did not reproduce from seed %d input %q", f.Seed, f.Input)
	}
	if again[0].Stage != f.Stage || again[0].Kind != f.Kind {
		t.Fatalf("reproduced as %s/%s, recorded %s/%s", again[0].Stage, again[0].Kind, f.Stage, f.Kind)
	}
}

func TestRunCleanWithQCache(t *testing.T) {
	// Same shipped-code sweep with cache-backed feasibility pruning in the
	// symex stage: a query-cache bug that misjudges a fork's feasibility
	// would drop the path claiming some concrete input ("no-path" finding).
	rep := Run(Options{Seeds: 30, Inputs: 6, SynthTimeout: -time.Millisecond, Jobs: 2, QCache: true})
	if rep.Programs != 30 {
		t.Fatalf("checked %d of 30 programs", rep.Programs)
	}
	if rep.Checks == 0 {
		t.Fatalf("no checks performed")
	}
	for _, f := range rep.Findings {
		t.Errorf("finding with qcache on:\n%s", f)
	}
}
