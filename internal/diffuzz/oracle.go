package diffuzz

import (
	"errors"
	"fmt"
	"sync"

	"stringloops/internal/bv"
	"stringloops/internal/cc"
	"stringloops/internal/cegis"
	"stringloops/internal/cir"
	"stringloops/internal/engine"
	"stringloops/internal/faultpoint"
	"stringloops/internal/memoryless"
	"stringloops/internal/qcache"
	"stringloops/internal/symex"
	"stringloops/internal/vocab"
)

// ResultKind classifies an executor outcome in the common result domain all
// three executors are compared in.
type ResultKind int

// Result kinds.
const (
	// RPtr is a pointer into the input buffer at offset Off.
	RPtr ResultKind = iota
	// RNull is the NULL pointer.
	RNull
	// RUB means the execution ran into C undefined behaviour (out-of-bounds
	// access, null dereference, or the summary's invalid pointer).
	RUB
)

// Result is an executor outcome. All executors must agree on it, including
// the UB cases — UB is deterministic in this pipeline (the interpreter traps
// the first bad access), so a UB/defined mismatch is a real divergence.
type Result struct {
	Kind ResultKind
	Off  int
}

func (r Result) String() string {
	switch r.Kind {
	case RPtr:
		return fmt.Sprintf("s+%d", r.Off)
	case RNull:
		return "NULL"
	default:
		return "UB"
	}
}

// Target is one generated program prepared for checking: lowered IR, the
// synthesized summary when CEGIS succeeded, the memoryless verdict gating
// how widely the summary may be compared, and a per-buffer-capacity cache of
// symbolic paths (symbolic execution runs once per capacity, then replays on
// each concrete input for free).
type Target struct {
	Seed   uint64
	Prog   *Prog
	Source string
	F      *cir.Func

	HasSummary bool
	Summary    vocab.Program
	// Memoryless is true when the loop was verified memoryless; the
	// small-model argument (§5 of the paper) then extends the bounded
	// summary equivalence to strings of every length.
	Memoryless bool
	MaxExSize  int

	in     *bv.Interner
	mu     sync.Mutex
	paths  map[int]pathSet // keyed by free content bytes (capacity - 1)
	mpaths map[int]pathSet // state-merged runs, same key (Options.Merge)
	budget *engine.Budget
	cache  *qcache.Cache        // non-nil under Options.QCache
	mcache *qcache.Cache        // the merged executor's own cache (Options.Merge)
	faults *faultpoint.Registry // non-nil under Options.FaultRate > 0
}

type pathSet struct {
	paths []symex.Path
	err   error
}

// Finding is one triaged fuzzer result: the stage that disagreed (or
// panicked), what kind of disagreement, and everything needed to reproduce —
// the generator seed, the (possibly minimized) source and input.
type Finding struct {
	Seed      uint64
	Stage     string // "frontend", "concrete", "symex", "summary", or an executor name
	Kind      string // "reject", "panic", "divergence", "no-path", "overlap", "error"
	Source    string
	Input     []byte // full buffer including NUL terminator; nil = NULL pointer input
	NullInput bool
	Detail    string
	Minimized bool
}

func (f *Finding) String() string {
	in := "NULL"
	if !f.NullInput {
		in = fmt.Sprintf("%q", f.Input)
	}
	min := ""
	if f.Minimized {
		min = " (minimized)"
	}
	return fmt.Sprintf("seed %d: [%s/%s]%s input=%s: %s\n%s",
		f.Seed, f.Stage, f.Kind, min, in, f.Detail, f.Source)
}

// faultRegistry builds the per-seed fault schedule for a -faults run. The
// profile arms only skip-safe sites: solver Unknowns and conflict storms,
// cache-miss storms, candidate rejections and fork failures all make a stage
// degrade or skip, never diverge, so findings stay trustworthy under
// injection. SymexPanic is deliberately unarmed (the panic guard reports
// every recovered panic as a finding) and BVNodeExhaust is unarmed because
// the replay interner carries no per-seed budget to fail.
func faultRegistry(seed uint64, o *Options) *faultpoint.Registry {
	r := o.FaultRate
	return faultpoint.New(faultpoint.Config{
		Seed: seed ^ o.FaultSeed,
		Rates: map[faultpoint.Site]float64{
			faultpoint.SatUnknown:       0.05 * r,
			faultpoint.SatConflictStorm: 0.05 * r,
			faultpoint.QCacheMiss:       0.25 * r,
			faultpoint.SymexForkFail:    0.02 * r,
			faultpoint.CegisReject:      0.10 * r,
		},
	})
}

// guard runs fn, converting a panic into a finding against the given stage.
// The executors must never kill the process on generated programs; a
// recovered panic is itself a first-class fuzzing result.
func guard(seed uint64, stage, source string, input []byte, nullIn bool, fn func() *Finding) (f *Finding) {
	defer func() {
		if r := recover(); r != nil {
			f = &Finding{
				Seed: seed, Stage: stage, Kind: "panic",
				Source: source, Input: input, NullInput: nullIn,
				Detail: fmt.Sprintf("recovered panic: %v", r),
			}
		}
	}()
	return fn()
}

// PrepareTarget parses, lowers, and (budget permitting) synthesizes a
// summary for p. A front-end rejection or a panic in any preparation stage
// comes back as a finding; synthesis simply not finding a program is normal
// (the summary executor skips).
func PrepareTarget(seed uint64, p *Prog, opts *Options) (*Target, *Finding) {
	src := p.Source()
	t := &Target{
		Seed: seed, Prog: p, Source: src,
		MaxExSize: opts.maxExSize(),
		in:        bv.NewInterner().SetVN(!opts.NoVN),
		paths:     map[int]pathSet{},
		budget:    opts.Budget,
	}
	if opts.FaultRate > 0 {
		t.faults = faultRegistry(seed, opts)
		t.in.SetFaults(t.faults)
	}
	if opts.QCache {
		t.cache = qcache.New(t.in).SetFaults(t.faults).SetDisk(opts.Cache.QueryStore())
	}
	if opts.Merge {
		t.mpaths = map[int]pathSet{}
		t.mcache = qcache.New(t.in).SetFaults(t.faults).SetDisk(opts.Cache.QueryStore())
	}

	if f := guard(seed, "frontend", src, nil, false, func() *Finding {
		file, err := cc.Parse(src)
		if err != nil {
			return &Finding{Seed: seed, Stage: "frontend", Kind: "reject", Source: src,
				Detail: fmt.Sprintf("generated source rejected by parser: %v", err)}
		}
		funcs, err := cir.LowerFile(file)
		if err != nil {
			return &Finding{Seed: seed, Stage: "frontend", Kind: "reject", Source: src,
				Detail: fmt.Sprintf("generated source rejected by lowering: %v", err)}
		}
		t.F = funcs[0]
		return nil
	}); f != nil {
		return nil, f
	}

	if opts.SynthTimeout > 0 {
		if f := guard(seed, "synthesize", src, nil, false, func() *Finding {
			ctx := opts.Budget.Context()
			b := engine.NewBudget(ctx, engine.Limits{Timeout: opts.SynthTimeout})
			out, err := cegis.Synthesize(t.F, cegis.Options{
				MaxExSize: t.MaxExSize,
				Budget:    b,
				Faults:    t.faults,
				NoVN:      opts.NoVN,
			})
			// Failure to synthesize is not a finding: many generated loops
			// have no gadget equivalent, and the budget is deliberately tiny.
			if err == nil && out.Found {
				t.HasSummary = true
				t.Summary = out.Program
			}
			return nil
		}); f != nil {
			return nil, f
		}
		if t.HasSummary {
			if f := guard(seed, "memoryless", src, nil, false, func() *Finding {
				// Bounded like synthesis: a timeout is a safe "don't know"
				// (the summary is then only compared on small buffers).
				b := engine.NewBudget(opts.Budget.Context(), engine.Limits{Timeout: opts.SynthTimeout})
				rep := memoryless.VerifyWith(t.F, memoryless.VerifyOptions{
					MaxLen: t.MaxExSize, Budget: b, Faults: t.faults, NoVN: opts.NoVN,
				})
				t.Memoryless = rep.Memoryless && rep.Err == nil
				return nil
			}); f != nil {
				return nil, f
			}
		}
	}
	return t, nil
}

// runConcrete executes the loop in the cir interpreter — the ground truth.
// ok=false means the run is inconclusive (step limit: a diverging loop on
// this input) and the input should be skipped.
func runConcrete(t *Target, input []byte) (Result, bool, error) {
	mem := cir.NewMemory()
	var args []cir.CVal
	if input == nil {
		args = []cir.CVal{cir.NullVal()}
	} else {
		buf := append([]byte(nil), input...)
		obj := mem.AllocData(buf)
		args = []cir.CVal{cir.PtrVal(obj, 0)}
	}
	res, err := cir.Exec(t.F, args, mem, 1<<18)
	switch {
	case errors.Is(err, cir.ErrStepLimit):
		return Result{}, false, nil
	case errors.Is(err, cir.ErrMemory):
		return Result{Kind: RUB}, true, nil
	case err != nil:
		return Result{}, false, fmt.Errorf("interpreter error: %v", err)
	}
	ret := res.Ret
	if !ret.IsPtr {
		return Result{}, false, fmt.Errorf("non-pointer return %s", ret)
	}
	if ret.IsNull() {
		return Result{Kind: RNull}, true, nil
	}
	if input == nil || ret.Obj != 0 {
		return Result{}, false, fmt.Errorf("return points at unexpected object: %s", ret)
	}
	return Result{Kind: RPtr, Off: ret.Off}, true, nil
}

// Executor is one cross-checked execution strategy. Run returns the outcome
// in the common result domain; ok=false means "inconclusive, skip this
// input" (e.g. budget exhausted, summary not applicable), and a non-nil
// error is an internal failure reported as a finding. Panics are recovered
// by the caller. Tests inject deliberately buggy executors through this
// interface to prove the harness catches and minimizes divergences.
type Executor interface {
	Name() string
	Run(t *Target, input []byte) (res Result, ok bool, err error)
}

// DefaultExecutors returns the two executors cross-checked against the
// concrete interpreter: symbolic-execution replay and the synthesized
// summary.
func DefaultExecutors() []Executor {
	return []Executor{symexExecutor{}, summaryExecutor{}}
}

// symexExecutor enumerates the loop's symbolic paths on a fully symbolic
// buffer of the input's capacity, then replays the concrete input against
// the path conditions. Exactly one path must claim the input; its result
// must match the interpreter.
type symexExecutor struct{}

func (symexExecutor) Name() string { return "symex" }

func (symexExecutor) Run(t *Target, input []byte) (Result, bool, error) {
	n := -1 // NULL input: no buffer object
	if input != nil {
		n = len(input) - 1
	}
	return replayPaths(t.pathsFor(n), input, n)
}

// mergeExecutor is symexExecutor with state merging enabled: the loop's
// join-point states fold into ite values and disjoined path conditions
// (symex.Engine.Merge), and the concrete input replays against the merged
// set. It is the third oracle under Options.Merge — a merge bug that loses
// or duplicates behaviours surfaces as a no-path or overlap finding, and a
// wrong ite guard as a result divergence against the interpreter.
type mergeExecutor struct{}

func (mergeExecutor) Name() string { return "merge" }

func (mergeExecutor) Run(t *Target, input []byte) (Result, bool, error) {
	n := -1
	if input != nil {
		n = len(input) - 1
	}
	return replayPaths(t.mergedPathsFor(n), input, n)
}

// replayPaths replays the concrete input against a symbolic path set:
// exactly one path must claim it, and its result is the verdict.
func replayPaths(ps pathSet, input []byte, n int) (Result, bool, error) {
	if ps.err != nil {
		if errors.Is(ps.err, symex.ErrTimeout) || errors.Is(ps.err, symex.ErrPathLimit) {
			return Result{}, false, nil
		}
		return Result{}, false, fmt.Errorf("symbolic execution failed: %v", ps.err)
	}

	asn := &bv.Assignment{Terms: map[string]uint64{}}
	for i := 0; i < n; i++ {
		asn.Terms[fmt.Sprintf("s[%d]", i)] = uint64(input[i])
	}
	ev := bv.NewEvaluator(asn)

	matched := false
	sawSkip := false
	var got Result
	for _, p := range ps.paths {
		if !ev.Bool(p.Cond) {
			continue
		}
		r, ok, err := mapPath(p, ev)
		if err != nil {
			return Result{}, false, err
		}
		if !ok {
			sawSkip = true
			continue
		}
		if matched && got != r {
			return Result{}, false, fmt.Errorf("overlap: two live paths claim the input with different results (%s vs %s)", got, r)
		}
		matched = true
		got = r
	}
	if !matched {
		if sawSkip {
			return Result{}, false, nil // only a step-limited path claims it
		}
		return Result{}, false, errors.New("no-path: no symbolic path condition matches the concrete input")
	}
	return got, true, nil
}

// mergedPathsFor is pathsFor with state merging. Feasibility checking is
// always on here (through the merge executor's own query cache): merged
// loops whose cursors diverge into ite offsets need the solver to fold the
// exit condition, and the merged disjunctive conditions are exactly the
// shapes the qcache slicing must keep together — so this path doubles as a
// differential test of cache-on-merged-conditions.
func (t *Target) mergedPathsFor(n int) pathSet {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ps, ok := t.mpaths[n]; ok {
		return ps
	}
	eng := &symex.Engine{
		In:               t.in,
		Budget:           t.budget,
		MaxSteps:         1 << 14,
		MaxPaths:         1 << 14,
		Faults:           t.faults,
		Merge:            true,
		CheckFeasibility: true,
		Cache:            t.mcache,
	}
	var args []symex.Value
	if n < 0 {
		args = []symex.Value{symex.NullValue()}
	} else {
		buf := symex.SymbolicString(t.in, "s", n)
		eng.Objects = [][]*bv.Term{buf}
		args = []symex.Value{symex.PtrValue(0, t.in.Int32(0))}
	}
	paths, err := eng.Run(t.F, args, bv.True)
	ps := pathSet{paths: paths, err: err}
	t.mpaths[n] = ps
	return ps
}

// mapPath maps one symbolic path outcome, under the evaluator for the
// concrete input, into the common result domain.
func mapPath(p symex.Path, ev *bv.Evaluator) (Result, bool, error) {
	if p.Err != nil {
		switch {
		case errors.Is(p.Err, symex.ErrOOB), errors.Is(p.Err, symex.ErrNullDeref):
			return Result{Kind: RUB}, true, nil
		case errors.Is(p.Err, symex.ErrStepLimit):
			return Result{}, false, nil
		default:
			return Result{}, false, fmt.Errorf("unexpected path error: %v", p.Err)
		}
	}
	ret := p.Ret
	if !ret.IsPtr {
		return Result{}, false, fmt.Errorf("non-pointer symbolic return")
	}
	if ret.IsNull() {
		return Result{Kind: RNull}, true, nil
	}
	if ret.Obj != 0 {
		return Result{}, false, fmt.Errorf("symbolic return points at unexpected object %d", ret.Obj)
	}
	return Result{Kind: RPtr, Off: int(int32(ev.Term(ret.Off)))}, true, nil
}

// pathsFor runs (or returns the cached) symbolic execution for a buffer with
// n free content bytes plus the forced terminator; n == -1 is the NULL input.
func (t *Target) pathsFor(n int) pathSet {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ps, ok := t.paths[n]; ok {
		return ps
	}
	// Feasibility pruning is off by default: it costs a SAT query per fork
	// and buys nothing here — an infeasible path's condition simply never
	// matches the concrete input during replay. Under Options.QCache it is
	// switched on with the cache attached, so a cache answering Unsat for a
	// satisfiable fork drops the path that should claim some concrete input
	// and shows up as a "no-path" finding.
	eng := &symex.Engine{
		In:       t.in,
		Budget:   t.budget,
		MaxSteps: 1 << 14,
		MaxPaths: 1 << 14,
		Faults:   t.faults,
	}
	if t.cache != nil {
		eng.CheckFeasibility = true
		eng.Cache = t.cache
	}
	var args []symex.Value
	if n < 0 {
		args = []symex.Value{symex.NullValue()}
	} else {
		buf := symex.SymbolicString(t.in, "s", n)
		eng.Objects = [][]*bv.Term{buf}
		args = []symex.Value{symex.PtrValue(0, t.in.Int32(0))}
	}
	paths, err := eng.Run(t.F, args, bv.True)
	ps := pathSet{paths: paths, err: err}
	t.paths[n] = ps
	return ps
}

// summaryExecutor evaluates the synthesized gadget program on the input.
// The summary is only expected to agree inside its verified domain: all
// buffer sizes when the loop is memoryless (small-model theorem), otherwise
// buffers of exactly the bounded-verification capacity, plus the NULL input
// (checked separately during synthesis). Shorter buffers are NOT instances
// of the verified capacity — out-of-bounds offsets differ, so a loop whose
// only over-read lands inside the larger buffer legitimately has UB on the
// smaller one (the fuzzer found exactly this on do-while loops; shorter
// strings are still covered via interior NULs at the verified capacity).
type summaryExecutor struct{}

func (summaryExecutor) Name() string { return "summary" }

func (summaryExecutor) Run(t *Target, input []byte) (Result, bool, error) {
	if !t.HasSummary {
		return Result{}, false, nil
	}
	if input != nil && !t.Memoryless && len(input)-1 != t.MaxExSize {
		return Result{}, false, nil
	}
	r := vocab.Run(t.Summary, input)
	switch r.Kind {
	case vocab.Ptr:
		return Result{Kind: RPtr, Off: r.Off}, true, nil
	case vocab.Null:
		return Result{Kind: RNull}, true, nil
	default:
		return Result{Kind: RUB}, true, nil
	}
}

// checkInput cross-checks one input (nil = NULL pointer) through every
// executor against the concrete interpreter, collecting findings.
func checkInput(t *Target, input []byte, execs []Executor) []*Finding {
	var finds []*Finding
	nullIn := input == nil
	var want Result
	conclusive := false
	if f := guard(t.Seed, "concrete", t.Source, input, nullIn, func() *Finding {
		w, ok, err := runConcrete(t, input)
		if err != nil {
			return &Finding{Seed: t.Seed, Stage: "concrete", Kind: "error",
				Source: t.Source, Input: input, NullInput: nullIn, Detail: err.Error()}
		}
		want, conclusive = w, ok
		return nil
	}); f != nil {
		return []*Finding{f}
	}
	if !conclusive {
		return nil
	}

	for _, ex := range execs {
		ex := ex
		if f := guard(t.Seed, ex.Name(), t.Source, input, nullIn, func() *Finding {
			got, ok, err := ex.Run(t, input)
			if err != nil {
				return &Finding{Seed: t.Seed, Stage: ex.Name(), Kind: "error",
					Source: t.Source, Input: input, NullInput: nullIn, Detail: err.Error()}
			}
			if !ok {
				return nil
			}
			if got != want {
				detail := fmt.Sprintf("interpreter says %s, %s says %s", want, ex.Name(), got)
				if ex.Name() == "summary" {
					detail += fmt.Sprintf(" (summary %q, memoryless=%v)", t.Summary.String(), t.Memoryless)
				}
				return &Finding{Seed: t.Seed, Stage: ex.Name(), Kind: "divergence",
					Source: t.Source, Input: input, NullInput: nullIn, Detail: detail}
			}
			return nil
		}); f != nil {
			finds = append(finds, f)
		}
	}
	return finds
}
