package diffuzz

import "time"

// maxReproRuns bounds the pipeline re-runs one minimization may spend.
const maxReproRuns = 250

// Minimize delta-debugs a finding: it greedily applies AST reductions to the
// generating program, then byte reductions to the input, re-running the
// pipeline after each step and keeping any reduction that still reproduces
// the finding (same stage and kind). The returned finding carries the
// minimized source and input and the detail from the minimized
// reproduction.
func Minimize(f *Finding, p *Prog, o *Options) *Finding {
	// Stages before input checking don't need synthesis re-runs; skipping
	// CEGIS makes each repro orders of magnitude cheaper.
	ro := *o
	if f.Stage != "summary" && f.Stage != "synthesize" && f.Stage != "memoryless" {
		ro.SynthTimeout = -1 * time.Millisecond
	}

	runs := 0
	repro := func(cand *Prog, input []byte, nullIn bool) *Finding {
		if runs >= maxReproRuns {
			return nil
		}
		runs++
		t, pf := PrepareTarget(f.Seed, cand, &ro)
		if pf != nil {
			if pf.Stage == f.Stage && pf.Kind == f.Kind {
				return pf
			}
			return nil
		}
		if f.Stage == "frontend" || f.Stage == "synthesize" || f.Stage == "memoryless" {
			return nil // preparation succeeded, finding gone
		}
		var in []byte
		if !nullIn {
			in = input
		}
		for _, g := range checkInput(t, in, ro.Executors) {
			if g.Stage == f.Stage && g.Kind == f.Kind {
				return g
			}
		}
		return nil
	}

	best := p.Clone()
	bestIn := append([]byte(nil), f.Input...)
	nullIn := f.NullInput
	lastRepro := f

	// Phase 1: shrink the program.
	for {
		improved := false
		for _, cand := range progReductions(best) {
			if g := repro(cand, bestIn, nullIn); g != nil {
				best, lastRepro = cand, g
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}

	// Phase 2: shrink the input (content bytes; the terminator stays).
	if !nullIn && len(bestIn) > 1 {
		for {
			improved := false
			for _, cin := range inputReductions(bestIn) {
				if g := repro(best, cin, false); g != nil {
					bestIn, lastRepro = cin, g
					improved = true
					break
				}
			}
			if !improved {
				break
			}
		}
	}

	out := *lastRepro
	out.Seed = f.Seed
	out.Source = best.Source()
	out.Input = bestIn
	out.NullInput = nullIn
	out.Minimized = true
	return &out
}

// progReductions yields candidate simplifications of p, roughly most
// aggressive first. Every candidate still renders to a valid program.
func progReductions(p *Prog) []*Prog {
	var out []*Prog
	mut := func(fn func(*Prog)) {
		q := p.Clone()
		fn(q)
		out = append(out, q)
	}
	if len(p.Cond.Atoms) > 1 {
		for i := range p.Cond.Atoms {
			i := i
			mut(func(q *Prog) {
				q.Cond.Atoms = append(q.Cond.Atoms[:i:i], q.Cond.Atoms[i+1:]...)
				if len(q.Cond.Conns) > 0 {
					c := i
					if c == len(q.Cond.Conns) {
						c--
					}
					q.Cond.Conns = append(q.Cond.Conns[:c:c], q.Cond.Conns[c+1:]...)
				}
			})
		}
	}
	if p.Acc {
		mut(func(q *Prog) {
			q.Acc = false
			if q.Ret == RetAcc {
				q.Ret = RetCursor
			}
		})
	}
	if p.PreSkip != nil {
		mut(func(q *Prog) { q.PreSkip = nil })
	}
	if p.NullGuard {
		mut(func(q *Prog) { q.NullGuard = false })
	}
	if p.Form != FormWhile {
		mut(func(q *Prog) { q.Form = FormWhile })
	}
	if p.Ret == RetCondNull || p.Ret == RetAcc {
		mut(func(q *Prog) {
			q.Ret = RetCursor
			if p.Ret == RetAcc {
				q.Acc = false
			}
		})
	}
	if p.Idx {
		mut(func(q *Prog) { q.Idx = false })
	}
	if p.Octal {
		mut(func(q *Prog) { q.Octal = false })
	}
	return out
}

// inputReductions yields candidate shrinks of a NUL-terminated buffer:
// chop to empty, halve, drop one byte, simplify one byte to 'a'.
func inputReductions(buf []byte) [][]byte {
	content := buf[:len(buf)-1]
	var out [][]byte
	emit := func(c []byte) { out = append(out, append(append([]byte(nil), c...), 0)) }
	if len(content) == 0 {
		return nil
	}
	emit(nil)
	if len(content) > 1 {
		emit(content[:len(content)/2])
		emit(content[len(content)/2:])
	}
	for i := range content {
		c := append(append([]byte(nil), content[:i]...), content[i+1:]...)
		emit(c)
	}
	for i, b := range content {
		if b != 'a' {
			c := append([]byte(nil), content...)
			c[i] = 'a'
			emit(c)
		}
	}
	return out
}
