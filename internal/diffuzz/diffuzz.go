package diffuzz

import (
	"time"

	"stringloops/internal/diskcache"
	"stringloops/internal/engine"
)

// Options configures a fuzzing run. The zero value is usable: every field
// has a sensible default.
type Options struct {
	// Seeds is the number of generated programs (default 100).
	Seeds int
	// BaseSeed is the first generator seed (default 1); seed i of the run is
	// BaseSeed + i, so any finding is reproducible from its seed alone.
	BaseSeed uint64
	// Inputs is the number of random buffers per program (default 8), on top
	// of the two fixed inputs every program gets: the NULL pointer and the
	// empty string.
	Inputs int
	// MaxInputLen bounds random buffer content bytes (default 6).
	MaxInputLen int
	// SynthTimeout is the per-program CEGIS budget (default 300ms). Zero or
	// negative disables the summary stage entirely.
	SynthTimeout time.Duration
	// MaxExSize is the bounded-verification string size (default 3, the
	// paper's max_ex_size); non-memoryless summaries are only compared on
	// buffers up to this size.
	MaxExSize int
	// Budget, when non-nil, bounds the whole run: seeds still pending when
	// it expires are counted as skipped, not silently dropped.
	Budget *engine.Budget
	// Jobs is the worker count (engine.Workers semantics: <1 = NumCPU).
	Jobs int
	// Executors overrides the cross-checked executor set (default:
	// DefaultExecutors). The concrete interpreter is always the ground truth
	// and is not part of this list.
	Executors []Executor
	// QCache runs the symbolic-execution stage with per-fork feasibility
	// checking routed through the query cache (internal/qcache). A cache bug
	// that wrongly prunes a feasible path then surfaces as a "no-path"
	// finding, turning the fuzzer into a differential test of the cache.
	QCache bool
	// FaultRate, when positive, arms a per-seed fault-injection registry
	// (internal/faultpoint) over the pipeline under test, scaled so that
	// rate 1 is a heavy storm. Only skip-safe sites are armed — injected
	// faults degrade runs (solver Unknowns, budget exhaustion, fork
	// failures) but can never manufacture a finding, so any finding under
	// -faults is still a real bug, now caught on the error paths too.
	// SymexPanic stays unarmed: the executors' panic guard reports every
	// recovered panic as a finding by design.
	FaultRate float64
	// FaultSeed decorrelates fault schedules from generator seeds (default
	// 0: the schedule for generator seed s is keyed on s alone).
	FaultSeed uint64
	// Cache, when non-nil, backs every per-seed query cache with the
	// persistent tier's query store. The fuzzer is also the tier's own
	// differential test: cache-on and cache-off runs over the same seeds
	// must produce identical findings, since a cache can change speed but
	// never verdicts.
	Cache *diskcache.Tier
	// Merge adds the state-merging symbolic executor as a third oracle
	// (alongside path enumeration and the summary): every input is
	// cross-checked merged vs enumerated vs concrete, so a merge bug that
	// loses, duplicates, or mislabels a behaviour becomes a finding.
	Merge bool
	// NoVN disables the value-numbering rewrite layer in every pipeline
	// under test; inverted so the zero Options keeps it armed. Like the
	// caches, value numbering may change speed but never verdicts, so
	// vn-on and vn-off runs over the same seeds must produce identical
	// findings.
	NoVN bool
	// NoMinimize skips delta-debugging of findings.
	NoMinimize bool
}

func (o *Options) maxExSize() int {
	if o.MaxExSize > 0 {
		return o.MaxExSize
	}
	return 3
}

func (o Options) withDefaults() Options {
	if o.Seeds <= 0 {
		o.Seeds = 100
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	if o.Inputs <= 0 {
		o.Inputs = 8
	}
	if o.MaxInputLen <= 0 {
		o.MaxInputLen = 6
	}
	if o.SynthTimeout == 0 {
		o.SynthTimeout = 300 * time.Millisecond
	}
	if o.Executors == nil {
		o.Executors = DefaultExecutors()
		if o.Merge {
			o.Executors = append(o.Executors, mergeExecutor{})
		}
	}
	return o
}

// Report aggregates a run.
type Report struct {
	// Programs is the number of generated programs actually checked.
	Programs int
	// Skipped counts seeds abandoned because the run budget expired.
	Skipped int
	// Synthesized counts programs for which CEGIS found a summary.
	Synthesized int
	// Memoryless counts synthesized programs verified memoryless.
	Memoryless int
	// Checks counts (program, input) comparisons performed.
	Checks int
	// Findings are the triaged disagreements, minimized unless NoMinimize.
	Findings []*Finding
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

type seedResult struct {
	skipped     bool
	synthesized bool
	memoryless  bool
	checks      int
	findings    []*Finding
}

// Run fuzzes opts.Seeds generated programs, each against NULL, the empty
// string, and opts.Inputs random buffers, cross-checking every executor
// against the concrete interpreter. Seeds are checked in parallel
// (opts.Jobs) but the report is deterministic in content order.
func Run(opts Options) *Report {
	o := opts.withDefaults()
	start := time.Now()
	results := make([]seedResult, o.Seeds)
	engine.Map(o.Jobs, o.Seeds, func(i int) {
		seed := o.BaseSeed + uint64(i)
		if o.Budget.Exceeded() {
			results[i].skipped = true
			return
		}
		results[i] = checkSeed(seed, &o)
	})

	rep := &Report{}
	for _, r := range results {
		if r.skipped {
			rep.Skipped++
			continue
		}
		rep.Programs++
		if r.synthesized {
			rep.Synthesized++
		}
		if r.memoryless {
			rep.Memoryless++
		}
		rep.Checks += r.checks
		rep.Findings = append(rep.Findings, r.findings...)
	}
	rep.Elapsed = time.Since(start)
	return rep
}

// checkSeed prepares seed's program and cross-checks all its inputs. At
// most one finding per (stage, kind) pair is kept per seed — the same root
// cause tends to fire on many inputs.
func checkSeed(seed uint64, o *Options) seedResult {
	var res seedResult
	p := Generate(seed)
	t, pf := PrepareTarget(seed, p, o)
	if pf != nil {
		res.findings = []*Finding{minimizeIf(pf, p, o)}
		return res
	}
	res.synthesized = t.HasSummary
	res.memoryless = t.Memoryless

	inputs := [][]byte{nil, {0}}
	r := newRng(seed ^ 0x5bf03635) // decorrelated from Generate's stream
	for i := 0; i < o.Inputs; i++ {
		inputs = append(inputs, GenInput(r, p, o.MaxInputLen))
	}

	seen := map[string]bool{}
	for _, in := range inputs {
		if o.Budget.Exceeded() {
			break
		}
		res.checks++
		for _, f := range checkInput(t, in, o.Executors) {
			key := f.Stage + "/" + f.Kind
			if seen[key] {
				continue
			}
			seen[key] = true
			res.findings = append(res.findings, minimizeIf(f, p, o))
		}
	}
	return res
}

func minimizeIf(f *Finding, p *Prog, o *Options) *Finding {
	if o.NoMinimize {
		return f
	}
	return Minimize(f, p, o)
}

// CheckSeedInput is the fuzz-harness entry point: cross-check the program
// generated from seed on one externally supplied buffer (the raw fuzz input;
// it is clamped and NUL-terminated here). The target should be prepared once
// per seed and reused — see TargetForSeed.
func CheckSeedInput(t *Target, raw []byte, maxLen int) []*Finding {
	if len(raw) > maxLen {
		raw = raw[:maxLen]
	}
	buf := append(append([]byte(nil), raw...), 0)
	return checkInput(t, buf, DefaultExecutors())
}

// TargetForSeed prepares the target for one seed with the given options,
// returning the preparation finding (if any) instead of a target.
func TargetForSeed(seed uint64, o *Options) (*Target, *Finding) {
	od := o.withDefaults()
	return PrepareTarget(seed, Generate(seed), &od)
}
