module stringloops

go 1.22
