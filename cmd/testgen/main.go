// Command testgen is the testing application of the paper's title: it
// summarises the string loops in a C file and emits a self-contained C test
// harness with one covering input per loop behaviour, derived by solving the
// summary's string constraints (§4.3's use of string solvers for test
// generation). Compile the output with any C compiler and run it.
//
//	testgen [-maxlen 4] [-timeout 30s] file.c > file_test.c
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stringloops/internal/harness"
)

func main() {
	maxLen := flag.Int("maxlen", 4, "generate tests over strings up to this length")
	timeout := flag.Duration("timeout", 30*time.Second, "per-loop synthesis budget")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: testgen [flags] file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "testgen: %v\n", err)
		os.Exit(1)
	}
	out, total, err := harness.GenerateCTests(string(src), harness.CTestOptions{
		MaxLen:  *maxLen,
		Timeout: *timeout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "testgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "testgen: %d tests generated\n", total)
	fmt.Print(out)
}
