// Command obsdiff is the regression watchdog over the observability
// artifacts: it diffs two run reports or BENCH_*.json files metric by
// metric and exits non-zero when a gated metric regresses past its
// tolerance.
//
//	obsdiff [-rule pattern=spec]... [-ignore pattern]... old.json new.json
//	obsdiff -validate-prom metrics.txt
//
// Both inputs are flattened to dotted numeric leaves (arrays index by their
// element's "name" field when present, so report rows keep stable keys when
// reordered). Each leaf is then matched against the rule set:
//
//	-rule 'reconcile_drift=+0'     any increase fails
//	-rule 'cache_hit_rate=-2%'     a drop of more than 2% fails
//	-rule 'shed_rate=+25%'         an increase of more than 25% fails
//	-rule 'p99_ns=skip'            not even reported
//	-rule 'requests=='             must match exactly
//
// Patterns are path.Match globs tried against the full dotted key and its
// final segment. Leaves matching no rule are informational: changes beyond
// -tolerance are printed but never fail the run. Timing metrics should stay
// informational in CI (they are machine-dependent); gate counts, rates and
// drift instead.
//
// With -validate-prom, the arguments are Prometheus text-exposition files
// ("-" = stdin) checked against the format rules (TYPE declarations, sample
// syntax, histogram bucket cumulativity); this is what the CI telemetry
// lane runs over the daemon's /metrics?format=prom scrape.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"

	"stringloops/internal/obs"
)

type rule struct {
	pattern string
	spec    string  // "=", "skip", or signed tolerance
	rel     float64 // relative tolerance for % specs
	abs     float64 // absolute tolerance for plain specs
	isRel   bool
	dir     int // +1: increase bad, -1: decrease bad, 0: exact/skip
}

type ruleList []rule

func (r *ruleList) String() string { return "" }

func (r *ruleList) Set(s string) error {
	eq := strings.LastIndex(s, "=")
	if eq <= 0 {
		return fmt.Errorf("rule %q: want pattern=spec", s)
	}
	pat, spec := s[:eq], s[eq+1:]
	if _, err := path.Match(pat, "x"); err != nil {
		return fmt.Errorf("rule %q: bad pattern: %v", s, err)
	}
	ru := rule{pattern: pat, spec: spec}
	switch spec {
	case "", "=":
		ru.spec = "="
	case "skip":
	default:
		if spec[0] != '+' && spec[0] != '-' {
			return fmt.Errorf("rule %q: spec wants =, skip, or a signed tolerance like +10%% or -0", s)
		}
		ru.dir = +1
		if spec[0] == '-' {
			ru.dir = -1
		}
		num := spec[1:]
		if strings.HasSuffix(num, "%") {
			ru.isRel = true
			num = strings.TrimSuffix(num, "%")
		}
		v, err := strconv.ParseFloat(num, 64)
		if err != nil || v < 0 {
			return fmt.Errorf("rule %q: bad tolerance %q", s, spec)
		}
		if ru.isRel {
			ru.rel = v / 100
		} else {
			ru.abs = v
		}
	}
	*r = append(*r, ru)
	return nil
}

type strList []string

func (s *strList) String() string     { return strings.Join(*s, ",") }
func (s *strList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var rules ruleList
	var ignores strList
	tolerance := flag.Float64("tolerance", 0.10, "relative change past which an ungated metric is reported (informational)")
	validateProm := flag.Bool("validate-prom", false, "validate Prometheus exposition files instead of diffing reports ('-' = stdin)")
	flag.Var(&rules, "rule", "gate rule pattern=spec (repeatable); spec: '=', 'skip', '+10%', '-0', ...")
	flag.Var(&ignores, "ignore", "glob of metric keys to drop entirely (repeatable)")
	flag.Parse()

	if *validateProm {
		os.Exit(runValidateProm(flag.Args()))
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: obsdiff [-rule pattern=spec]... old.json new.json\n       obsdiff -validate-prom metrics.txt")
		os.Exit(2)
	}
	old, err := loadFlat(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "obsdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := loadFlat(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "obsdiff: %v\n", err)
		os.Exit(2)
	}
	os.Exit(diff(old, cur, rules, ignores, *tolerance))
}

func runValidateProm(args []string) int {
	if len(args) == 0 {
		args = []string{"-"}
	}
	code := 0
	for _, arg := range args {
		var data []byte
		var err error
		if arg == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(arg)
		}
		if err == nil {
			err = obs.ValidatePrometheus(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "obsdiff: %s: %v\n", arg, err)
			code = 1
			continue
		}
		fmt.Printf("%s: valid exposition format\n", arg)
	}
	return code
}

// loadFlat reads a JSON file and flattens every numeric leaf to a dotted
// key. Array elements carrying a "name" field are keyed by it — report rows
// and bench runs then diff by identity, not position.
func loadFlat(file string) (map[string]float64, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var root any
	if err := json.Unmarshal(data, &root); err != nil {
		return nil, fmt.Errorf("%s: %v", file, err)
	}
	out := map[string]float64{}
	flatten("", root, out)
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no numeric leaves", file)
	}
	return out, nil
}

func flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case float64:
		out[prefix] = x
	case bool:
		// Booleans diff as 0/1 so gates like drain_clean== work.
		if x {
			out[prefix] = 1
		} else {
			out[prefix] = 0
		}
	case map[string]any:
		for k, child := range x {
			flatten(join(prefix, k), child, out)
		}
	case []any:
		for i, child := range x {
			key := strconv.Itoa(i)
			if m, ok := child.(map[string]any); ok {
				if name, ok := m["name"].(string); ok && name != "" {
					key = name
				} else if name, ok := m["loop"].(string); ok && name != "" {
					key = name
				}
			}
			flatten(join(prefix, key), child, out)
		}
	}
}

func join(prefix, k string) string {
	if prefix == "" {
		return k
	}
	return prefix + "." + k
}

func matches(pattern, key string) bool {
	if ok, _ := path.Match(pattern, key); ok {
		return true
	}
	if i := strings.LastIndex(key, "."); i >= 0 {
		if ok, _ := path.Match(pattern, key[i+1:]); ok {
			return true
		}
	}
	return false
}

func findRule(rules ruleList, key string) *rule {
	for i := range rules {
		if matches(rules[i].pattern, key) {
			return &rules[i]
		}
	}
	return nil
}

func diff(old, cur map[string]float64, rules ruleList, ignores strList, tolerance float64) int {
	keys := map[string]bool{}
	for k := range old {
		keys[k] = true
	}
	for k := range cur {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	regressions, infos := 0, 0
	for _, k := range sorted {
		skip := false
		for _, ig := range ignores {
			if matches(ig, k) {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		ru := findRule(rules, k)
		if ru != nil && ru.spec == "skip" {
			continue
		}
		ov, ook := old[k]
		nv, nok := cur[k]
		switch {
		case !ook:
			fmt.Printf("  new    %-48s %v\n", k, nv)
			infos++
			continue
		case !nok:
			if ru != nil {
				fmt.Printf("FAIL   %-48s gated metric missing from %s\n", k, flag.Arg(1))
				regressions++
			} else {
				fmt.Printf("  gone   %-48s was %v\n", k, ov)
				infos++
			}
			continue
		}
		delta := nv - ov
		rel := 0.0
		if ov != 0 {
			rel = delta / ov
		} else if delta != 0 {
			rel = 1 // from zero: treat any change as 100%
		}
		if ru == nil {
			if abs(rel) > tolerance {
				fmt.Printf("  drift  %-48s %v -> %v (%+.1f%%)\n", k, ov, nv, rel*100)
				infos++
			}
			continue
		}
		bad := false
		switch {
		case ru.spec == "=":
			bad = ov != nv
		case ru.dir > 0 && delta > 0:
			bad = (ru.isRel && rel > ru.rel) || (!ru.isRel && delta > ru.abs)
		case ru.dir < 0 && delta < 0:
			bad = (ru.isRel && -rel > ru.rel) || (!ru.isRel && -delta > ru.abs)
		}
		if bad {
			fmt.Printf("FAIL   %-48s %v -> %v (%+.1f%%, rule %s=%s)\n", k, ov, nv, rel*100, ru.pattern, ru.spec)
			regressions++
		}
	}
	if regressions > 0 {
		fmt.Printf("obsdiff: %d regression(s), %d informational change(s)\n", regressions, infos)
		return 1
	}
	fmt.Printf("obsdiff: ok (%d informational change(s))\n", infos)
	return 0
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
