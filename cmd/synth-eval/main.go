// Command synth-eval runs the synthesis evaluation of §4.2: one sweep over
// the 115-loop corpus produces Table 3 (-table3: loops synthesised per
// program with average/median times) and Figure 2 (-figure2: programs
// synthesised as the maximum program size grows, at several timeouts —
// derived from the sweep because iterative deepening visits sizes in order).
//
// The paper's budgets (2h timeout on a KLEE+Z3 stack) scale here to seconds;
// override with -timeout.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stringloops/internal/cegis"
	"stringloops/internal/cliflags"
	"stringloops/internal/core"
	"stringloops/internal/diskcache"
	"stringloops/internal/engine"
	"stringloops/internal/harness"
	"stringloops/internal/loopdb"
	"stringloops/internal/obs"
)

func main() {
	table3 := flag.Bool("table3", false, "print Table 3")
	figure2 := flag.Bool("figure2", false, "print Figure 2 series")
	timeout := flag.Duration("timeout", 15*time.Second, "per-loop synthesis budget (paper: 2h)")
	maxSize := flag.Int("maxsize", 9, "maximum encoded program size")
	maxSet := flag.Int("maxset", 3, "maximum strspn-family set size (4 reaches the libosip outliers)")
	verbose := flag.Bool("v", false, "per-loop progress")
	jobs := cliflags.Jobs(nil, 1)
	resilient := cliflags.Resilient(nil)
	merge := cliflags.Merge(nil, false)
	vn := cliflags.VN(nil, true)
	cacheDir := cliflags.CacheDir(nil)
	cacheMaxBytes := cliflags.CacheMaxBytes(nil)
	obsFlags := cliflags.Obs(nil)
	flag.Parse()
	sess, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "synth-eval: %v\n", err)
		os.Exit(2)
	}
	tier, err := diskcache.OpenSized(*cacheDir, *cacheMaxBytes, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "synth-eval: %v\n", err)
		os.Exit(2)
	}
	if *resilient {
		code := resilientSweep(*timeout, *maxSize, *maxSet, *jobs, *merge, !*vn, tier, sess)
		if err := tier.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "synth-eval: cache persist: %v\n", err)
		}
		if err := sess.Finish(os.Stdout, os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "synth-eval: %v\n", err)
			code = 1
		}
		os.Exit(code)
	}
	if !*table3 && !*figure2 {
		*table3, *figure2 = true, true
	}

	opts := cegis.Options{Timeout: *timeout, MaxProgSize: *maxSize, MaxSetLen: *maxSet, Merge: *merge,
		NoVN: !*vn, Disk: tier.QueryStore()}
	progress := (os.Stdout)
	if !*verbose {
		progress = nil
	}
	fmt.Printf("synthesising %d loops (timeout %v, max size %d, max set %d, %d workers)...\n",
		len(loopdb.Corpus()), *timeout, *maxSize, *maxSet, *jobs)
	start := time.Now()
	records := harness.SynthesizeCorpusObs(loopdb.Corpus(), opts, progress, *jobs, sess)
	fmt.Printf("sweep finished in %v\n\n", time.Since(start).Round(time.Second))
	defer func() {
		if err := tier.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "synth-eval: cache persist: %v\n", err)
		}
		if err := sess.Finish(os.Stdout, os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "synth-eval: %v\n", err)
			os.Exit(1)
		}
	}()

	if *table3 {
		fmt.Println("Table 3. Successfully synthesised loops per program.")
		fmt.Printf("%-10s %14s %12s %12s\n", "", "% synthesised", "Average (s)", "Median (s)")
		for _, row := range harness.Table3(records) {
			if row.Total == 0 && row.Program != "Total" {
				fmt.Printf("%-10s %10d/%-3d %12s %12s\n", row.Program, row.Synthesised, row.Total, "n/a", "n/a")
				continue
			}
			fmt.Printf("%-10s %10d/%-3d %12.3f %12.3f\n",
				row.Program, row.Synthesised, row.Total, row.AvgSec, row.MedianSec)
		}
		fmt.Println()
	}

	if *table3 {
		// The paper notes which gadgets never appear in synthesised programs
		// (strpbrk, is start and reverse in its 2-hour run).
		used := map[string]int{}
		for _, r := range records {
			if !r.Found {
				continue
			}
			for _, op := range []struct {
				name string
				op   byte
			}{
				{"rawmemchr", 'M'}, {"strchr", 'C'}, {"strrchr", 'R'},
				{"strpbrk", 'B'}, {"strspn", 'P'}, {"strcspn", 'N'},
				{"is nullptr", 'Z'}, {"is start", 'X'}, {"increment", 'I'},
				{"set to end", 'E'}, {"set to start", 'S'}, {"reverse", 'V'},
			} {
				for _, in := range r.Program {
					if byte(in.Op) == op.op {
						used[op.name]++
						break
					}
				}
			}
		}
		fmt.Println("Gadget usage across synthesised programs:")
		var never []string
		for _, name := range []string{"rawmemchr", "strchr", "strrchr", "strpbrk",
			"strspn", "strcspn", "is nullptr", "is start", "increment",
			"set to end", "set to start", "reverse"} {
			if used[name] == 0 {
				never = append(never, name)
				continue
			}
			fmt.Printf("  %-13s %d\n", name, used[name])
		}
		if len(never) > 0 {
			fmt.Printf("  never synthesised: %v (paper: strpbrk, is start, reverse)\n", never)
		}
		fmt.Println()
	}

	if *figure2 {
		timeouts := []time.Duration{
			*timeout / 60, *timeout / 15, *timeout / 4, *timeout,
		}
		fmt.Println("Figure 2. Programs synthesised vs maximum program size.")
		fmt.Printf("(timeouts scaled from the paper's 30s/3min/10min/1h)\n")
		curves := harness.Figure2(records, *maxSize, timeouts)
		fmt.Printf("%-12s", "size")
		for s := 1; s <= *maxSize; s++ {
			fmt.Printf("%6d", s)
		}
		fmt.Println()
		for _, to := range timeouts {
			fmt.Printf("%-12s", to.Round(time.Millisecond))
			for s := 1; s <= *maxSize; s++ {
				fmt.Printf("%6d", curves[to][s])
			}
			fmt.Println()
		}
	}
}

// resilientSweep runs every corpus loop through the degradation ladder and
// prints the rung each loop reached with its attempt count and, when the
// ladder descended, the reason. Degraded loops are expected output, not
// failures: the exit code is non-zero only when a loop fails outright
// (infrastructure failure — even the concrete floor produced nothing).
func resilientSweep(timeout time.Duration, maxSize, maxSet, jobs int, merge, noVN bool, tier *diskcache.Tier, sess *obs.Session) int {
	corpus := loopdb.Corpus()
	fmt.Printf("resilient sweep over %d loops (timeout %v, %d workers)...\n", len(corpus), timeout, jobs)
	start := time.Now()
	outcomes := make([]core.Outcome, len(corpus))
	engine.MapWorker(engine.Workers(jobs, len(corpus)), len(corpus), func(worker, i int) {
		l := corpus[i]
		item := sess.Item(l.Name, l.Program, worker)
		outcomes[i] = core.SummarizeResilient(l.Source, l.FuncName, core.ResilientOptions{
			Options: core.Options{Timeout: timeout, MaxProgramSize: maxSize, MaxSetSize: maxSet, Merge: merge, NoVN: noVN, Cache: tier},
			Tracer:  item.Tracer(),
			Metrics: item.Metrics(),
		})
		item.Finish(outcomes[i].Rung.String())
	})
	fmt.Printf("sweep finished in %v\n\n", time.Since(start).Round(time.Second))

	rungCount := map[core.Rung]int{}
	failed := 0
	for i, out := range outcomes {
		rungCount[out.Rung]++
		line := fmt.Sprintf("%-28s %-10s attempts=%d", corpus[i].Name, out.Rung, len(out.Attempts))
		if out.Rung != core.RungFull && out.Err != nil {
			line += fmt.Sprintf("  (%v)", out.Err)
		}
		fmt.Println(line)
		if out.Rung == core.RungFailed {
			failed++
		}
	}
	fmt.Printf("\nrungs: full=%d memoryless=%d covering=%d smoke=%d failed=%d\n",
		rungCount[core.RungFull], rungCount[core.RungMemoryless],
		rungCount[core.RungCovering], rungCount[core.RungSmoke], rungCount[core.RungFailed])
	if failed > 0 {
		return 1
	}
	return 0
}
