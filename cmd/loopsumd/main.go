// Command loopsumd is the summarization daemon: an HTTP/JSON service over
// the loop-summarization pipeline, engineered for overload.
//
//	loopsumd [-addr :8419] [-inflight N] [-queue N] [-req-timeout 30s] ...
//
// POST a C loop to /summarize and get back the best rung of the
// degradation ladder the current load allows — a full summary on a quiet
// server, a memoryless verdict or concrete tests under pressure. The
// admission queue is bounded (429 + Retry-After past capacity), each
// request runs under a budget carved from the global envelope, and
// SIGTERM drains gracefully: stop admitting, answer everything already
// in the door (down-laddered to the smoke floor), flush the persistent
// cache tier, exit. See DESIGN.md §14 and the README's "Running the
// daemon" section.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stringloops/internal/cliflags"
	"stringloops/internal/core"
	"stringloops/internal/diskcache"
	"stringloops/internal/engine"
	"stringloops/internal/obs"
	"stringloops/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8419", "listen address")
	inflight := flag.Int("inflight", 0, "max requests running the pipeline concurrently (0 = one per CPU)")
	queue := flag.Int("queue", 0, "max requests waiting for a slot (0 = 8x inflight); past it requests get 429")
	reqTimeout := flag.Duration("req-timeout", 30*time.Second, "per-request deadline, queue wait included")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "SIGTERM drain deadline: answer every admitted request within it")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes (413 past it)")
	conflicts := flag.Int64("conflicts", 0, "global SAT-conflict envelope, carved evenly across inflight slots (0 = unlimited)")
	nodes := flag.Int64("nodes", 0, "global expression-node envelope, carved across slots (0 = unlimited)")
	forks := flag.Int64("forks", 0, "global symbolic-fork envelope, carved across slots (0 = unlimited)")
	rate := flag.Float64("rate", 0, "per-client requests/sec token-bucket rate (0 = no rate limiting)")
	burst := flag.Float64("burst", 10, "per-client token-bucket burst")
	degradeMem := flag.Float64("degrade-memoryless", 0.50, "load fraction at which new requests start at the memoryless rung")
	degradeCov := flag.Float64("degrade-covering", 0.75, "load fraction at which new requests start at covering inputs")
	degradeSmoke := flag.Float64("degrade-smoke", 0.90, "load fraction at which new requests start at the concrete smoke floor")
	targetP99 := flag.Duration("target-p99", 0, "degrade one extra rung while recent p99 exceeds this (0 = load signal only)")
	vocabLetters := flag.String("vocab", "", "restrict the synthesis vocabulary (Table 1 opcode letters)")
	merge := cliflags.Merge(nil, false)
	vn := cliflags.VN(nil, true)
	cacheDir := cliflags.CacheDir(nil)
	cacheMaxBytes := cliflags.CacheMaxBytes(nil)
	trace := flag.String("trace", "", "arm the tracer; GET /trace serves the Chrome trace-event JSON (the value names the shutdown dump file, '-' = no dump)")
	flag.Parse()

	tier, err := diskcache.OpenSized(*cacheDir, *cacheMaxBytes, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loopsumd: %v\n", err)
		return 1
	}
	var tracer *obs.Tracer
	if *trace != "" {
		tracer = obs.New()
	}
	metrics := obs.NewMetrics()

	srv := service.New(service.Config{
		MaxInFlight:    *inflight,
		QueueDepth:     *queue,
		MaxSourceBytes: *maxBody,
		RequestTimeout: *reqTimeout,
		GlobalLimits:   engine.Limits{Conflicts: *conflicts, Nodes: *nodes, Forks: *forks},
		RatePerSec:     *rate,
		Burst:          *burst,
		Overload: service.OverloadPolicy{
			MemorylessAt: *degradeMem,
			CoveringAt:   *degradeCov,
			SmokeAt:      *degradeSmoke,
			TargetP99:    *targetP99,
		},
		StartRung:  core.RungFull,
		Merge:      *merge,
		NoVN:       !*vn,
		Vocabulary: *vocabLetters,
		Cache:      tier,
		Tracer:     tracer,
		Metrics:    metrics,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loopsumd: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Printf("loopsumd: listening on %s\n", ln.Addr())

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Printf("loopsumd: %v: draining (deadline %v)\n", sig, *drainTimeout)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "loopsumd: serve: %v\n", err)
		return 1
	}

	// Drain: refuse new work, answer everything admitted (down-laddered to
	// the smoke floor), flush the cache tier — then close the listener.
	// The HTTP shutdown runs after the drain so every answered request
	// gets its bytes onto the wire before connections close.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "loopsumd: drain: %v\n", err)
		code = 1
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "loopsumd: shutdown: %v\n", err)
		code = 1
	}
	<-errCh // Serve has returned ErrServerClosed
	if tracer != nil && *trace != "-" {
		f, err := os.Create(*trace)
		if err == nil {
			err = tracer.WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "loopsumd: trace dump: %v\n", err)
		}
	}
	fmt.Println("loopsumd: drained")
	return code
}
