// Command loopsum is the refactoring tool of §4.5: it reads a C file,
// summarises a string loop, and prints the equivalent standard-library form
// ready to submit as a patch.
//
//	loopsum [-func name] [-vocab LETTERS] [-timeout 30s] file.c
//
// With -candidates it instead runs the automatic filter pipeline over the
// whole file and reports which loops are worth summarising.
//
// With -corpus it sweeps the built-in loop database instead of a file — the
// observability smoke mode: combined with -trace/-report it produces a
// Chrome trace and a per-loop/per-phase run report, and it cross-checks that
// the report's counter totals reconcile exactly with the per-loop budget
// spend (exiting non-zero on drift).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"stringloops"
	"stringloops/internal/cliflags"
	"stringloops/internal/core"
	"stringloops/internal/diskcache"
	"stringloops/internal/engine"
	"stringloops/internal/loopdb"
	"stringloops/internal/obs"
	"stringloops/internal/service"
)

func main() {
	funcName := flag.String("func", "", "function to summarise (default: first char *f(char *))")
	vocabLetters := flag.String("vocab", "", "restrict the vocabulary (Table 1 opcode letters, e.g. MPNIFV)")
	timeout := flag.Duration("timeout", 30*time.Second, "synthesis budget")
	maxSize := flag.Int("maxsize", 9, "maximum encoded program size")
	requireMem := flag.Bool("memoryless", false, "fail unless the loop verifies memoryless (summary then holds for all lengths)")
	resilient := cliflags.Resilient(nil)
	candidates := flag.Bool("candidates", false, "list loop candidates instead of summarising")
	check := flag.String("check", "", "verify a refactoring: 'original,refactored' function names")
	corpus := flag.Bool("corpus", false, "summarise the built-in loop database instead of a file")
	sample := flag.Int("sample", 0, "with -corpus: only the first N loops (0 = all)")
	jobs := cliflags.Jobs(nil, 1)
	merge := cliflags.Merge(nil, false)
	vn := cliflags.VN(nil, true)
	cacheDir := cliflags.CacheDir(nil)
	cacheMaxBytes := cliflags.CacheMaxBytes(nil)
	server := cliflags.Server(nil)
	explain := cliflags.Explain(nil)
	obsFlags := cliflags.Obs(nil)
	flag.Parse()

	if *corpus {
		os.Exit(runCorpus(*sample, *jobs, *timeout, *maxSize, *merge, *vn, *cacheDir, *cacheMaxBytes, obsFlags))
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: loopsum [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "loopsum: %v\n", err)
		os.Exit(1)
	}

	if *check != "" {
		parts := strings.SplitN(*check, ",", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "loopsum: -check wants 'original,refactored'")
			os.Exit(2)
		}
		ok, cex, err := stringloops.CheckRefactoring(string(src), parts[0], parts[1], 3)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loopsum: %v\n", err)
			os.Exit(1)
		}
		if ok {
			fmt.Printf("%s and %s are equivalent on all bounded strings and NULL\n", parts[0], parts[1])
			return
		}
		fmt.Printf("NOT equivalent: they differ on input %q\n", cex)
		os.Exit(1)
	}

	if *candidates {
		cands, err := stringloops.FindCandidates(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "loopsum: %v\n", err)
			os.Exit(1)
		}
		for _, c := range cands {
			fmt.Printf("%-32s %s\n", c.Function, c.Stage)
		}
		return
	}

	if *server != "" {
		os.Exit(runRemote(*server, string(src), *funcName, *vocabLetters, *maxSize, *requireMem, *explain, obsFlags))
	}

	opts := stringloops.Options{
		Vocabulary:        *vocabLetters,
		MaxProgramSize:    *maxSize,
		Timeout:           *timeout,
		RequireMemoryless: *requireMem,
		Merge:             *merge,
		NoVN:              !*vn,
		CacheDir:          *cacheDir,
		CacheMaxBytes:     *cacheMaxBytes,
	}

	if *resilient {
		runResilient(string(src), *funcName, opts)
		return
	}

	summary, err := stringloops.SummarizeFunc(string(src), *funcName, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loopsum: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("summary:   %s\n", summary.Readable)
	fmt.Printf("encoded:   %q\n", summary.Encoded)
	if summary.Memoryless {
		fmt.Printf("verified:  memoryless (%s traversal) — equivalent on strings of every length\n", summary.Direction)
	} else {
		fmt.Printf("verified:  equivalent on all strings up to the bounded length\n")
	}
	fmt.Printf("synthesis: %v\n\n", summary.Elapsed.Round(time.Millisecond))
	fmt.Println(summary.C)
}

// runCorpus sweeps the loop database with a per-loop budget carrying the
// session's observability handles, then reconciles the report's counter
// totals against the summed budget spend: both sides count through the same
// engine.Budget mirrors, so any drift means an instrumentation bug.
func runCorpus(sample, jobs int, timeout time.Duration, maxSize int, merge, vn bool, cacheDir string, cacheMaxBytes int64, obsFlags *obs.Flags) int {
	sess, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "loopsum: %v\n", err)
		return 2
	}
	tier, err := diskcache.OpenSized(cacheDir, cacheMaxBytes, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loopsum: %v\n", err)
		return 2
	}
	loops := loopdb.Corpus()
	if sample > 0 && sample < len(loops) {
		loops = loops[:sample]
	}
	budgets := make([]*engine.Budget, len(loops))
	outcomes := make([]string, len(loops))
	engine.MapWorker(engine.Workers(jobs, len(loops)), len(loops), func(worker, i int) {
		l := loops[i]
		item := sess.Item(l.Name, l.Program, worker)
		budget := engine.NewBudget(nil, engine.Limits{Timeout: timeout}).
			SetObs(item.Tracer(), item.Metrics())
		budgets[i] = budget
		_, err := core.Summarize(l.Source, l.FuncName, core.Options{
			MaxProgramSize: maxSize,
			Timeout:        timeout,
			Budget:         budget,
			Merge:          merge,
			NoVN:           !vn,
			Cache:          tier,
		})
		switch {
		case err == nil:
			outcomes[i] = "ok"
		case errors.Is(err, core.ErrNotFound):
			outcomes[i] = "notfound"
		default:
			outcomes[i] = "error"
		}
		item.Finish(outcomes[i])
	})

	found := 0
	for _, o := range outcomes {
		if o == "ok" {
			found++
		}
	}
	fmt.Printf("corpus: %d/%d loops summarised\n", found, len(loops))
	if err := tier.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "loopsum: cache persist: %v\n", err)
	}
	if err := sess.Finish(os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "loopsum: %v\n", err)
		return 1
	}
	if sess.Report != nil {
		if err := reconcile(sess, budgets); err != nil {
			fmt.Fprintf(os.Stderr, "loopsum: reconcile: %v\n", err)
			return 1
		}
		fmt.Println("reconcile: report totals match budget spend")
	}
	return 0
}

// reconcile checks that the report's counter totals equal the summed
// per-loop budget spend, counter by counter.
func reconcile(sess *obs.Session, budgets []*engine.Budget) error {
	var conflicts, propagations, forks, nodes, hits, misses int64
	var dhits, dmisses, devics int64
	var vnhits, fusions, bhits, scalls, snin, snout int64
	for _, b := range budgets {
		conflicts += b.Conflicts()
		propagations += b.Propagations()
		forks += b.Forks()
		nodes += b.Nodes()
		hits += b.CacheHits()
		misses += b.CacheMisses()
		dhits += b.DiskHits()
		dmisses += b.DiskMisses()
		devics += b.DiskEvictions()
		vnhits += b.VNHits()
		fusions += b.IteFusions()
		bhits += b.BlastHits()
		scalls += b.SimplifyCalls()
		snin += b.SimplifyNodesIn()
		snout += b.SimplifyNodesOut()
	}
	_, totals := sess.Report.Totals()
	for _, c := range []struct {
		name string
		want int64
	}{
		{obs.MSatConflicts, conflicts},
		{obs.MSatPropagations, propagations},
		{obs.MSymexForks, forks},
		{obs.MBVNodes, nodes},
		{obs.MQCacheHits, hits},
		{obs.MQCacheMisses, misses},
		{obs.MDiskHits, dhits},
		{obs.MDiskMisses, dmisses},
		{obs.MDiskEvictions, devics},
		{obs.MBVVNHits, vnhits},
		{obs.MBVIteFusions, fusions},
		{obs.MBVBlastHits, bhits},
		{obs.MBVSimplifyCalls, scalls},
		{obs.MBVSimplifyNodesIn, snin},
		{obs.MBVSimplifyNodesOut, snout},
	} {
		if got := totals[c.name]; got != c.want {
			return fmt.Errorf("%s: report total %d != budget spend %d", c.name, got, c.want)
		}
	}
	return nil
}

// runResilient walks the degradation ladder and reports the best rung
// reached. Degraded outcomes (any rung above failed) exit zero — only an
// infrastructure failure, where even the concrete floor produced nothing,
// is a process failure.
func runResilient(src, funcName string, opts stringloops.Options) {
	out := stringloops.SummarizeResilient(src, funcName, opts)
	fmt.Printf("rung:      %s\n", out.Rung)
	for i, a := range out.Attempts {
		status := "ok"
		switch {
		case a.Panicked:
			status = "panic: " + a.Err.Error()
		case a.Err != nil:
			status = a.Err.Error()
		}
		fmt.Printf("attempt %d: %-10s %s\n", i+1, a.Rung, status)
	}
	switch out.Rung {
	case stringloops.RungFull:
		fmt.Printf("summary:   %s\n", out.Summary.Readable)
		fmt.Printf("encoded:   %q\n\n", out.Summary.Encoded)
		fmt.Println(out.Summary.C)
	case stringloops.RungMemoryless:
		fmt.Printf("verdict:   memoryless=%v (%s)\n", out.Memoryless.Memoryless, out.Memoryless.Reason)
	case stringloops.RungCovering:
		fmt.Printf("covering:  %d path-covering inputs\n", len(out.Covering))
		for _, ti := range out.Covering {
			fmt.Printf("  %q -> offset %d null=%v\n", ti.Input, ti.Offset, ti.Null)
		}
	case stringloops.RungSmoke:
		fmt.Printf("smoke:     %d concrete runs\n", len(out.Smoke.Inputs))
		for _, ti := range out.Smoke.Inputs {
			fmt.Printf("  %q -> offset %d null=%v\n", ti.Input, ti.Offset, ti.Null)
		}
	default:
		fmt.Fprintf(os.Stderr, "loopsum: even the concrete floor failed: %v\n", out.Err)
		os.Exit(1)
	}
	if out.Rung != stringloops.RungFull && out.Err != nil {
		fmt.Printf("degraded:  %v\n", out.Err)
	}
}

// runRemote posts the source to a running loopsumd daemon (-server mode)
// and renders the daemon's verdict in the resilient-run format. The
// client retries 429/5xx with capped exponential backoff, honoring the
// daemon's Retry-After hints. With -explain it also renders the daemon's
// provenance record; with -trace it writes the client-side spans, which
// tracecheck -merge can join with the daemon's trace.
func runRemote(base, src, funcName, vocab string, maxSize int, requireMem, explain bool, obsFlags *obs.Flags) int {
	sess, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "loopsum: %v\n", err)
		return 2
	}
	client := &service.Client{Base: base, ClientID: "loopsum-cli", Tracer: sess.Tracer}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	resp, err := client.Summarize(ctx, service.Request{
		Source:            src,
		Func:              funcName,
		Vocabulary:        vocab,
		MaxProgramSize:    maxSize,
		RequireMemoryless: requireMem,
		Explain:           explain,
	})
	if ferr := sess.Finish(os.Stdout, os.Stderr); ferr != nil {
		fmt.Fprintf(os.Stderr, "loopsum: %v\n", ferr)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "loopsum: %v\n", err)
		return 1
	}
	fmt.Printf("rung:      %s (started at %s, %d attempts, %v server time)\n",
		resp.Rung, resp.StartRung, resp.Attempts, time.Duration(resp.ElapsedNs).Round(time.Millisecond))
	switch {
	case resp.Summary != nil:
		fmt.Printf("summary:   %s\n", resp.Summary.Readable)
		fmt.Printf("encoded:   %q\n\n", resp.Summary.Encoded)
		fmt.Println(resp.Summary.C)
	case resp.Memoryless != nil:
		fmt.Printf("verdict:   memoryless=%v (%s)\n", resp.Memoryless.Memoryless, resp.Memoryless.Reason)
	case resp.Covering != nil:
		fmt.Printf("covering:  %d path-covering inputs\n", len(resp.Covering))
		for _, ti := range resp.Covering {
			fmt.Printf("  %q -> offset %d null=%v\n", ti.Input, ti.Offset, ti.Null)
		}
	case resp.Smoke != nil:
		fmt.Printf("smoke:     %d concrete runs\n", len(resp.Smoke))
		for _, ti := range resp.Smoke {
			fmt.Printf("  %q -> offset %d null=%v\n", ti.Input, ti.Offset, ti.Null)
		}
	}
	if resp.Degraded != "" {
		fmt.Printf("degraded:  %s\n", resp.Degraded)
	}
	if resp.Provenance != nil {
		printProvenance(resp.Provenance)
	}
	return 0
}

// printProvenance renders the daemon's provenance record: why the request
// started on its rung, what each attempt spent, and whether the spend
// totals reconciled against the engine budgets.
func printProvenance(p *service.Provenance) {
	fmt.Println("\nprovenance:")
	if p.TraceID != "" {
		fmt.Printf("  trace:     %s\n", p.TraceID)
	}
	policy := fmt.Sprintf("load=%.2f p99=%v", p.LoadFraction, time.Duration(p.P99SignalNs).Round(time.Microsecond))
	switch {
	case p.PolicyDisabled:
		policy = "overload policy disabled"
	case p.Draining:
		policy = "draining (floor rung forced)"
	}
	fmt.Printf("  rung:      start=%s final=%s floor=%s (%s)\n", p.StartRung, p.FinalRung, p.FloorRung, policy)
	for i, a := range p.Attempts {
		status := "ok"
		switch {
		case a.Panicked:
			status = "panic: " + a.Err
		case a.Err != "":
			status = a.Err
		}
		fmt.Printf("  attempt %d: %-10s %-24s %v\n", i+1, a.Rung, status,
			time.Duration(a.ElapsedNs).Round(time.Microsecond))
		if a.Spend != nil {
			fmt.Printf("             %s\n", spendLine(*a.Spend))
		}
	}
	fmt.Printf("  totals:    %s\n", spendLine(p.Totals))
	if p.Reconciled {
		fmt.Println("  reconcile: spend totals match engine budgets")
	} else {
		fmt.Println("  reconcile: DRIFT against engine budgets (instrumentation bug)")
	}
}

// spendLine formats the non-zero counters of a spend record, so quiet
// attempts stay one short line instead of fifteen zeroes.
func spendLine(s service.SpendTotals) string {
	parts := []string{}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"conflicts", s.Conflicts}, {"props", s.Propagations}, {"forks", s.Forks},
		{"nodes", s.Nodes}, {"qcache", s.QCacheHits}, {"qmiss", s.QCacheMisses},
		{"disk", s.DiskHits}, {"dmiss", s.DiskMisses}, {"evict", s.DiskEvictions},
		{"vn", s.VNHits}, {"fuse", s.IteFusions}, {"blast", s.BlastHits},
		{"simp", s.SimplifyCalls}, {"merges", s.Merges}, {"ites", s.MergeItes},
	} {
		if c.v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c.name, c.v))
		}
	}
	if len(parts) == 0 {
		return "(no solver spend)"
	}
	return strings.Join(parts, " ")
}
