// Command loopsum is the refactoring tool of §4.5: it reads a C file,
// summarises a string loop, and prints the equivalent standard-library form
// ready to submit as a patch.
//
//	loopsum [-func name] [-vocab LETTERS] [-timeout 30s] file.c
//
// With -candidates it instead runs the automatic filter pipeline over the
// whole file and reports which loops are worth summarising.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"stringloops"
)

func main() {
	funcName := flag.String("func", "", "function to summarise (default: first char *f(char *))")
	vocabLetters := flag.String("vocab", "", "restrict the vocabulary (Table 1 opcode letters, e.g. MPNIFV)")
	timeout := flag.Duration("timeout", 30*time.Second, "synthesis budget")
	maxSize := flag.Int("maxsize", 9, "maximum encoded program size")
	requireMem := flag.Bool("memoryless", false, "fail unless the loop verifies memoryless (summary then holds for all lengths)")
	candidates := flag.Bool("candidates", false, "list loop candidates instead of summarising")
	check := flag.String("check", "", "verify a refactoring: 'original,refactored' function names")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: loopsum [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "loopsum: %v\n", err)
		os.Exit(1)
	}

	if *check != "" {
		parts := strings.SplitN(*check, ",", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "loopsum: -check wants 'original,refactored'")
			os.Exit(2)
		}
		ok, cex, err := stringloops.CheckRefactoring(string(src), parts[0], parts[1], 3)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loopsum: %v\n", err)
			os.Exit(1)
		}
		if ok {
			fmt.Printf("%s and %s are equivalent on all bounded strings and NULL\n", parts[0], parts[1])
			return
		}
		fmt.Printf("NOT equivalent: they differ on input %q\n", cex)
		os.Exit(1)
	}

	if *candidates {
		cands, err := stringloops.FindCandidates(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "loopsum: %v\n", err)
			os.Exit(1)
		}
		for _, c := range cands {
			fmt.Printf("%-32s %s\n", c.Function, c.Stage)
		}
		return
	}

	summary, err := stringloops.SummarizeFunc(string(src), *funcName, stringloops.Options{
		Vocabulary:        *vocabLetters,
		MaxProgramSize:    *maxSize,
		Timeout:           *timeout,
		RequireMemoryless: *requireMem,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loopsum: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("summary:   %s\n", summary.Readable)
	fmt.Printf("encoded:   %q\n", summary.Encoded)
	if summary.Memoryless {
		fmt.Printf("verified:  memoryless (%s traversal) — equivalent on strings of every length\n", summary.Direction)
	} else {
		fmt.Printf("verified:  equivalent on all strings up to the bounded length\n")
	}
	fmt.Printf("synthesis: %v\n\n", summary.Elapsed.Round(time.Millisecond))
	fmt.Println(summary.C)
}
