// Command vocab-opt reproduces §4.2.3 / Table 4: Gaussian-process
// optimisation of the synthesis vocabulary. The success function s(v) is the
// number of corpus loops synthesised with vocabulary v at a reduced budget
// (the paper: max size 7, 5 minutes per loop; here seconds — override with
// -timeout). The GP proposes vocabularies by expected improvement; the run
// prints every evaluation and the vocabularies that beat the full-vocabulary
// baseline.
package main

import (
	"flag"
	"fmt"
	"sort"
	"time"

	"stringloops/internal/cegis"
	"stringloops/internal/gp"
	"stringloops/internal/harness"
	"stringloops/internal/loopdb"
	"stringloops/internal/vocab"
)

func main() {
	evals := flag.Int("evals", 40, "objective evaluations (paper: 40)")
	timeout := flag.Duration("timeout", time.Second, "per-loop budget inside s(v) (paper: 5min)")
	maxSize := flag.Int("maxsize", 7, "maximum program size inside s(v) (paper: 7)")
	baselineBudget := flag.Duration("baseline", 5*time.Second, "per-loop budget for the full-vocabulary baseline (paper: 2h)")
	seed := flag.Int64("seed", 1, "GP seed")
	jobs := flag.Int("j", 1, "parallel synthesis workers inside s(v) (<1 = one per CPU)")
	flag.Parse()

	loops := loopdb.Corpus()
	fmt.Printf("baseline: full vocabulary, max size 9, %v per loop...\n", *baselineBudget)
	baseline := harness.CountSynthesizedParallel(loops, cegis.Options{Timeout: *baselineBudget}, *jobs)
	fmt.Printf("baseline synthesises %d/%d loops\n\n", baseline, len(loops))

	eval := 0
	objective := func(bits []bool) float64 {
		v := harness.VocabularyFromBits(bits)
		if !v.Contains(vocab.OpReturn) {
			// Programs must end in return; such vocabularies synthesise
			// nothing, and skipping the sweep keeps the run fast.
			eval++
			fmt.Printf("eval %2d: %-13s -> 0 (no return gadget)\n", eval, v.Letters())
			return 0
		}
		start := time.Now()
		n := harness.CountSynthesizedParallel(loops, cegis.Options{
			Vocabulary:  v,
			Timeout:     *timeout,
			MaxProgSize: *maxSize,
		}, *jobs)
		eval++
		fmt.Printf("eval %2d: %-13s -> %2d loops (%v)\n",
			eval, v.Letters(), n, time.Since(start).Round(time.Second))
		return float64(n)
	}

	best, bestY, history := gp.Maximize(objective, 13, gp.Options{
		Evaluations: *evals,
		Seed:        *seed,
	})

	fmt.Printf("\nTable 4. Vocabularies matching or beating the full-vocabulary baseline (%d loops):\n", baseline)
	type row struct {
		letters string
		size    int
		n       int
	}
	var winners []row
	for _, s := range history {
		if int(s.Y) >= baseline {
			v := harness.VocabularyFromBits(s.X)
			winners = append(winners, row{v.Letters(), v.Size(), int(s.Y)})
		}
	}
	sort.Slice(winners, func(i, j int) bool {
		if winners[i].n != winners[j].n {
			return winners[i].n > winners[j].n
		}
		return winners[i].size < winners[j].size
	})
	if len(winners) == 0 {
		fmt.Println("  (none this run; try more -evals or a larger -timeout)")
	}
	for _, w := range winners {
		fmt.Printf("  %-13s (%2d gadgets) %d loops\n", w.letters, w.size, w.n)
	}
	fmt.Printf("\nbest vocabulary: %s with %d loops\n",
		harness.VocabularyFromBits(best).Letters(), int(bestY))
	fmt.Println("\nNote (see EXPERIMENTS.md): in this implementation candidate programs are")
	fmt.Println("enumerated as concrete skeletons, so solver-query cost does not scale with")
	fmt.Println("vocabulary size; reduced vocabularies match the baseline at a fraction of")
	fmt.Println("the search, but cannot exceed it as in the paper's symbolic-bytes setup.")
}
