package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stringloops/internal/engine"
	"stringloops/internal/leakcheck"
	"stringloops/internal/loopdb"
	"stringloops/internal/obs"
	"stringloops/internal/service"
)

// serveReport is the BENCH_9.json schema: the daemon under sustained
// concurrent load over the corpus — latency percentiles, shed rate, the
// degradation-rung histogram, and the drain-under-load measurement.
type serveReport struct {
	Benchmark   string `json:"benchmark"`
	GoVersion   string `json:"go_version"`
	MaxInFlight int    `json:"max_inflight"`
	QueueDepth  int    `json:"queue_depth"`
	Concurrency int    `json:"concurrency"`

	Requests     int64 `json:"requests"`      // load-phase requests fired
	Answered     int64 `json:"answered"`      // responses received (any status)
	Completed    int64 `json:"completed"`     // 200s
	HighWater    int64 `json:"high_water"`    // max concurrent outstanding requests
	RetriesSpent int64 `json:"retries_spent"` // client-side retries during load

	P50Ns int64   `json:"p50_ns"`
	P99Ns int64   `json:"p99_ns"`
	Shed  int64   `json:"shed"` // 429/503 sheds across both phases
	Rate  float64 `json:"shed_rate"`

	RungHistogram      map[string]int64 `json:"rung_histogram"`
	StartRungHistogram map[string]int64 `json:"start_rung_histogram"`
	ReconcileDrift     int64            `json:"reconcile_drift"`

	DrainPhaseRequests int64 `json:"drain_phase_requests"`
	DrainPhaseAnswered int64 `json:"drain_phase_answered"`
	DrainNs            int64 `json:"drain_ns"`
	DrainClean         bool  `json:"drain_clean"`
	GoroutineLeaks     int   `json:"goroutine_leaks"`
}

// benchTB adapts leakcheck's TB to the harness: failures print and flip
// a flag the -check gate reads.
type benchTB struct{ leaks int }

func (b *benchTB) Helper() {}
func (b *benchTB) Errorf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	b.leaks++
}

// serveLane boots the daemon in-process, sustains `concurrency`
// outstanding requests over the corpus, then triggers a drain while a
// second wave of clients is still firing — the SIGTERM-under-full-load
// scenario — and gates: every request answered, drain inside its
// deadline, zero goroutine leaks.
func serveLane(short, check bool, out string) {
	const concurrency = 200
	requests := int64(1500)
	if short {
		requests = 600
	}
	cfg := service.Config{
		MaxInFlight:  runtime.GOMAXPROCS(0),
		QueueDepth:   256,
		GlobalLimits: engine.Limits{Conflicts: 5000, Forks: 20000, Nodes: 500000},
		Metrics:      obs.NewMetrics(),
	}
	cfg.GlobalLimits.Conflicts *= int64(cfg.MaxInFlight)
	cfg.GlobalLimits.Forks *= int64(cfg.MaxInFlight)
	cfg.GlobalLimits.Nodes *= int64(cfg.MaxInFlight)
	srv := service.New(cfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal("serve lane listen: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	loops := loopdb.Corpus()
	bodies := make([][]byte, 0, 12)
	for _, l := range loops[:12] {
		b, err := json.Marshal(service.Request{Source: l.Source, Func: l.FuncName})
		if err != nil {
			fatal("serve lane request encode: %v", err)
		}
		bodies = append(bodies, b)
	}
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: concurrency}}

	rep := serveReport{
		Benchmark:   "BenchmarkServeDaemon",
		GoVersion:   runtime.Version(),
		MaxInFlight: cfg.MaxInFlight,
		QueueDepth:  cfg.QueueDepth,
		Concurrency: concurrency,
	}

	// Load phase: `concurrency` workers keep one request outstanding each,
	// retrying sheds through the service client so every logical request
	// eventually completes.
	var next, outstanding, highWater, answered, completed, retries atomic.Int64
	latencies := make([][]time.Duration, concurrency)
	reqs := make([]service.Request, 0, 12)
	for _, l := range loops[:12] {
		reqs = append(reqs, service.Request{Source: l.Source, Func: l.FuncName})
	}
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, int(requests)/concurrency+1)
			cl := &service.Client{
				Base: base, HTTP: hc, MaxRetries: 8, Seed: uint64(w + 1),
				ClientID: fmt.Sprintf("bench-%d", w%16),
				Sleep: func(ctx context.Context, d time.Duration) error {
					retries.Add(1)
					if d > 10*time.Millisecond {
						d = 10 * time.Millisecond
					}
					time.Sleep(d)
					return nil
				},
			}
			for {
				i := next.Add(1)
				if i > requests {
					latencies[w] = lat
					return
				}
				if o := outstanding.Add(1); o > highWater.Load() {
					highWater.Store(o)
				}
				began := time.Now()
				_, err := cl.Summarize(context.Background(), reqs[int(i)%len(reqs)])
				lat = append(lat, time.Since(began))
				outstanding.Add(-1)
				answered.Add(1)
				if err == nil {
					completed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	rep.Requests = requests
	rep.Answered = answered.Load()
	rep.Completed = completed.Load()
	rep.HighWater = highWater.Load()
	rep.RetriesSpent = retries.Load()

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		rep.P50Ns = int64(all[len(all)/2])
		rep.P99Ns = int64(all[len(all)*99/100])
	}

	// Drain phase: a second wave keeps firing while Drain runs. Every
	// request in flight when the drain begins must be answered — at a
	// lower rung or with a clean retryable 503, never a broken connection.
	stop := make(chan struct{})
	var drainFired, drainAnswered atomic.Int64
	var wave sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wave.Add(1)
		go func(w int) {
			defer wave.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				drainFired.Add(1)
				resp, err := hc.Post(base+"/summarize", "application/json",
					strings.NewReader(string(bodies[w%len(bodies)])))
				if err != nil {
					continue // a broken connection stays unanswered
				}
				resp.Body.Close()
				drainAnswered.Add(1)
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	drainDeadline := 60 * time.Second
	dctx, dcancel := context.WithTimeout(context.Background(), drainDeadline)
	drainStart := time.Now()
	drainErr := srv.Drain(dctx)
	rep.DrainNs = int64(time.Since(drainStart))
	dcancel()
	close(stop)
	wave.Wait()
	rep.DrainPhaseRequests = drainFired.Load()
	rep.DrainPhaseAnswered = drainAnswered.Load()
	rep.DrainClean = drainErr == nil

	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	httpSrv.Shutdown(sctx)
	scancel()
	<-httpDone
	hc.CloseIdleConnections()

	snap := cfg.Metrics.Snapshot()
	rep.RungHistogram = map[string]int64{}
	rep.StartRungHistogram = map[string]int64{}
	for name, v := range snap.Counters {
		if r, ok := strings.CutPrefix(name, service.MSvcRungPrefix); ok {
			rep.RungHistogram[r] = v
		}
		if r, ok := strings.CutPrefix(name, service.MSvcStartPrefix); ok {
			rep.StartRungHistogram[r] = v
		}
	}
	rep.Shed = snap.Counters[service.MSvcShedQueueFull] + snap.Counters[service.MSvcShedRateLimit] +
		snap.Counters[service.MSvcShedDraining] + snap.Counters[service.MSvcShedInjected]
	if total := snap.Counters[service.MSvcRequests]; total > 0 {
		rep.Rate = float64(rep.Shed) / float64(total)
	}
	rep.ReconcileDrift = snap.Counters[service.MSvcReconcileDrift]

	tb := &benchTB{}
	leakcheck.CheckWithin(tb, 10*time.Second)
	rep.GoroutineLeaks = tb.leaks

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("serve lane marshal: %v", err)
	}
	enc = append(enc, '\n')
	fmt.Print(string(enc))
	if out != "" {
		if err := os.WriteFile(out, enc, 0o644); err != nil {
			fatal("write %s: %v", out, err)
		}
	}

	if check {
		if rep.Answered != rep.Requests {
			fatal("serve check failed: %d of %d load requests answered", rep.Answered, rep.Requests)
		}
		if rep.Completed != rep.Requests {
			fatal("serve check failed: %d of %d load requests completed after retries", rep.Completed, rep.Requests)
		}
		if rep.HighWater < int64(concurrency)*9/10 {
			fatal("serve check failed: high-water concurrency %d never approached %d", rep.HighWater, concurrency)
		}
		if !rep.DrainClean {
			fatal("serve check failed: drain under load: %v", drainErr)
		}
		if rep.DrainNs >= int64(drainDeadline) {
			fatal("serve check failed: drain took %v (deadline %v)", time.Duration(rep.DrainNs), drainDeadline)
		}
		if rep.DrainPhaseAnswered != rep.DrainPhaseRequests {
			fatal("serve check failed: %d of %d drain-phase requests answered (broken connections)",
				rep.DrainPhaseAnswered, rep.DrainPhaseRequests)
		}
		if rep.ReconcileDrift != 0 {
			fatal("serve check failed: %d requests with budget<->metrics drift", rep.ReconcileDrift)
		}
		if rep.GoroutineLeaks != 0 {
			fatal("serve check failed: %d leaked goroutines", rep.GoroutineLeaks)
		}
		fmt.Printf("serve check ok: %d requests, high-water %d, p50 %v, p99 %v, shed rate %.3f, drain %v\n",
			rep.Requests, rep.HighWater, time.Duration(rep.P50Ns), time.Duration(rep.P99Ns),
			rep.Rate, time.Duration(rep.DrainNs))
	}
}
