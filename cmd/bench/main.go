// Command bench runs the solver-chain benchmark: the Figure 1 loop under the
// vanilla.KLEE configuration with the query-cache chain (independence
// slicing, counterexample cache, incremental solver — internal/qcache) on
// and off, plus the summarised str.KLEE run for reference. It writes the
// measurements to a JSON file so CI and successive PRs can compare runs.
//
// With -obs it instead runs the observability-overhead lane and writes
// BENCH_5.json: ns/op on the Figure 1 program with the obs instrumentation
// disabled vs enabled, plus a hot-path microbenchmark that gates the
// disabled-mode cost (the batched-flush pattern every instrumented hot loop
// uses) at <= 2% over a bare loop.
//
// With -merge it runs the state-merging lane and writes BENCH_6.json: the
// Figure 1 loop enumerated at length n against the merging executor at
// length 2n, gating that the merged double-length run stays under the
// enumerated wall time — the n=8 -> n=16 push.
//
// With -persist it runs the cross-process persistent-cache lane and writes
// BENCH_7.json: the memorylessness corpus sweep is executed twice in child
// processes sharing one -cache-dir — cold (empty directory) then warm (the
// cold run's persisted tier) — gating that the verdicts are bit-identical
// and, with -check, that the warm process is strictly faster. BENCH_3's
// in-process counterexample-cache hit rate is the ceiling this lane chases
// across a process boundary.
//
// Usage:
//
//	bench                      # full run, writes BENCH_3.json
//	bench -short -check        # CI smoke: small length, assert cache wins
//	bench -obs                 # overhead lane, writes BENCH_5.json
//	bench -merge -check        # merging lane, writes BENCH_6.json
//	bench -persist -check      # warm-vs-cold lane, writes BENCH_7.json
//	bench -telemetry -check    # provenance/exposition lane, writes BENCH_10.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"stringloops/internal/cc"
	"stringloops/internal/cir"
	"stringloops/internal/cliflags"
	"stringloops/internal/diskcache"
	"stringloops/internal/engine"
	"stringloops/internal/kleebench"
	"stringloops/internal/loopdb"
	"stringloops/internal/memoryless"
	"stringloops/internal/obs"
	"stringloops/internal/vocab"
)

// figure1Loop is the paper's running example (Figure 1): skip leading
// whitespace.
const figure1Loop = `
#define whitespace(c) (((c) == ' ') || ((c) == '\t'))
char* loopFunction(char* line) {
  char *p;
  for (p = line; p && *p && whitespace (*p); p++)
    ;
  return p;
}`

// figure1Summary is the synthesised summary of figure1Loop ("ZFP \t\x00F").
const figure1Summary = "ZFP \t\x00F"

// run is one benchmark configuration's aggregated measurement.
type run struct {
	Name          string  `json:"name"`
	Mode          string  `json:"mode"`   // "vanilla" or "str"
	QCache        bool    `json:"qcache"` // query-cache chain enabled
	Length        int     `json:"length"` // symbolic string length
	Reps          int     `json:"reps"`
	NsPerOp       int64   `json:"ns_per_op"`
	SolverQueries int64   `json:"solver_queries_per_op"`
	Conflicts     int64   `json:"sat_conflicts_per_op"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	Tests         int     `json:"tests"`           // generated test inputs (last rep)
	Paths         int     `json:"paths,omitempty"` // terminal paths (last rep)
	Merge         bool    `json:"merge,omitempty"` // state-merging executor
	VN            bool    `json:"vn"`              // value-numbering rewrite layer
	VNHits        int64   `json:"vn_hits_per_op,omitempty"`
	IteFusions    int64   `json:"ite_fusions_per_op,omitempty"`
}

// report is the BENCH_3.json schema.
type report struct {
	Benchmark     string  `json:"benchmark"`
	Loop          string  `json:"loop"`
	GoVersion     string  `json:"go_version"`
	Runs          []run   `json:"runs"`
	ConflictRatio float64 `json:"conflict_ratio_off_over_on"`
	NsRatio       float64 `json:"ns_ratio_off_over_on"`
}

func main() {
	var (
		short = flag.Bool("short", false, "CI smoke mode: shorter symbolic string, one rep")
		check = flag.Bool("check", false, "exit 1 unless cache-on beats cache-off (>=1.5x fewer conflicts or >=30% lower ns/op) with a non-zero hit rate")
		out   = flag.String("out", "BENCH_3.json", "output JSON path (empty = stdout only)")
		n     = flag.Int("n", 8, "symbolic string length")
		reps  = flag.Int("reps", 3, "repetitions per configuration")
		obsL  = flag.Bool("obs", false, "run the observability-overhead lane and write BENCH_5.json instead")
		mrg   = flag.Bool("merge", false, "run the state-merging lane and write BENCH_6.json instead")
		vnL   = flag.Bool("vn", false, "run the value-numbering lane and write BENCH_8.json instead")

		serve   = flag.Bool("serve", false, "run the daemon load lane and write BENCH_9.json instead")
		telem   = flag.Bool("telemetry", false, "run the telemetry lane (provenance, exposition, trace merge) and write BENCH_10.json instead")
		persist = flag.Bool("persist", false, "run the cross-process persistent-cache lane and write BENCH_7.json instead")
		sample  = flag.Int("sample", 0, "with -persist: only the first N corpus loops (0 = all 115)")
		child   = flag.Bool("persist-child", false, "internal: run one corpus sweep over -cache-dir and print verdicts (the -persist lane's worker phase)")
	)
	cacheDir := cliflags.CacheDir(nil)
	flag.Parse()
	if *child {
		persistChildRun(*cacheDir, *sample)
		return
	}
	if *short {
		*reps = 1
		// The merge and vn lanes keep n=8: their gates run the merging
		// executor at 2n, and below the n=8 crossover enumeration is too
		// cheap for the comparison to mean anything.
		if !*mrg && !*vnL {
			*n = 6
		}
	}
	if *obsL {
		if *out == "BENCH_3.json" {
			*out = "BENCH_5.json"
		}
		obsLane(*n, *reps, *short, *out)
		return
	}
	if *mrg {
		if *out == "BENCH_3.json" {
			*out = "BENCH_6.json"
		}
		mergeLane(*n, *reps, *check, *out)
		return
	}
	if *vnL {
		if *out == "BENCH_3.json" {
			*out = "BENCH_8.json"
		}
		vnLane(*n, *reps, *check, *out)
		return
	}
	if *persist {
		if *out == "BENCH_3.json" {
			*out = "BENCH_7.json"
		}
		persistLane(*sample, *short, *check, *out, *cacheDir)
		return
	}
	if *serve {
		if *out == "BENCH_3.json" {
			*out = "BENCH_9.json"
		}
		serveLane(*short, *check, *out)
		return
	}
	if *telem {
		if *out == "BENCH_3.json" {
			*out = "BENCH_10.json"
		}
		telemetryLane(*short, *check, *out)
		return
	}

	f := lower()
	prog, err := vocab.Decode(figure1Summary)
	if err != nil {
		fatal("decode summary: %v", err)
	}

	rep := report{
		Benchmark: "BenchmarkSolverCache",
		Loop:      "figure1/skip_whitespace",
		GoVersion: runtime.Version(),
	}
	on := vanillaRun("SolverCacheOn", f, *n, *reps, kleebench.Config{QCache: true})
	off := vanillaRun("SolverCacheOff", f, *n, *reps, kleebench.Config{QCache: false})
	rep.Runs = append(rep.Runs, on, off, strRun("StrCacheOn", prog, *n, *reps))
	rep.ConflictRatio = ratio(off.Conflicts, on.Conflicts)
	rep.NsRatio = ratio(off.NsPerOp, on.NsPerOp)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	enc = append(enc, '\n')
	fmt.Print(string(enc))
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatal("write %s: %v", *out, err)
		}
	}

	if *check {
		fewerConflicts := rep.ConflictRatio >= 1.5
		lowerNs := rep.NsRatio >= 1.3
		if on.CacheHitRate <= 0 {
			fatal("check failed: cache hit rate is zero")
		}
		if !fewerConflicts && !lowerNs {
			fatal("check failed: conflicts off/on = %.2f (< 1.5) and ns off/on = %.2f (< 1.3)",
				rep.ConflictRatio, rep.NsRatio)
		}
		fmt.Printf("check ok: conflicts off/on = %.2f, ns off/on = %.2f, hit rate = %.3f\n",
			rep.ConflictRatio, rep.NsRatio, on.CacheHitRate)
	}
}

// mergeReport is the BENCH_6.json schema: the enumerating executor at the
// baseline length against the merging executor at double the length, both
// through the query-cache chain.
type mergeReport struct {
	Benchmark string `json:"benchmark"`
	Loop      string `json:"loop"`
	GoVersion string `json:"go_version"`
	Runs      []run  `json:"runs"`
	// NsRatioEnumOverMerged compares the enumerated baseline-length run to
	// the merged double-length run; >= 1 means merging absorbed a doubling
	// of the symbolic string for free.
	NsRatioEnumOverMerged float64 `json:"ns_ratio_enum_n_over_merged_2n"`
	// PathRatio is enumerated paths over merged paths at the same length n
	// — the state-explosion factor merging removes.
	PathRatio float64 `json:"path_ratio_enum_over_merged_same_n"`
}

// mergeLane measures state merging: enumeration at n vs merging at n and
// 2n. With check, the merged 2n run must stay under the enumerated n wall
// time (the Figure 1 n=8 -> n=16 push).
func mergeLane(n, reps int, check bool, out string) {
	f := lower()
	enum := vanillaRun("EnumN", f, n, reps, kleebench.Config{QCache: true})
	mergedSame := vanillaRun("MergeN", f, n, reps, kleebench.Config{QCache: true, Merge: true})
	merged2x := vanillaRun("MergeTwoN", f, 2*n, reps, kleebench.Config{QCache: true, Merge: true})

	rep := mergeReport{
		Benchmark:             "BenchmarkStateMerging",
		Loop:                  "figure1/skip_whitespace",
		GoVersion:             runtime.Version(),
		Runs:                  []run{enum, mergedSame, merged2x},
		NsRatioEnumOverMerged: ratio(enum.NsPerOp, merged2x.NsPerOp),
		PathRatio:             ratio(int64(enum.Paths), int64(mergedSame.Paths)),
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	enc = append(enc, '\n')
	fmt.Print(string(enc))
	if out != "" {
		if err := os.WriteFile(out, enc, 0o644); err != nil {
			fatal("write %s: %v", out, err)
		}
	}
	if check {
		if rep.NsRatioEnumOverMerged < 1 {
			fatal("merge check failed: merged n=%d took %.2fx the enumerated n=%d wall time",
				2*n, 1/rep.NsRatioEnumOverMerged, n)
		}
		if rep.PathRatio < 1 {
			fatal("merge check failed: merged path count exceeds enumerated at n=%d", n)
		}
		fmt.Printf("merge check ok: merged n=%d at %.2fx under enumerated n=%d; same-length path ratio %.1fx\n",
			2*n, rep.NsRatioEnumOverMerged, n, rep.PathRatio)
	}
}

// vnReport is the BENCH_8.json schema: the merged double-length run (the
// BENCH_6 configuration) with the value-numbering rewrite layer off against
// the same run with it on.
type vnReport struct {
	Benchmark string `json:"benchmark"`
	Loop      string `json:"loop"`
	GoVersion string `json:"go_version"`
	Runs      []run  `json:"runs"`
	// NsRatioOffOverOn and QueryRatioOffOverOn compare the vn-off run to the
	// vn-on run at merged length 2n; the gate passes when either the wall
	// time drops >= 1.5x or the solver queries drop >= 2x.
	NsRatioOffOverOn    float64 `json:"ns_ratio_off_over_on"`
	QueryRatioOffOverOn float64 `json:"query_ratio_off_over_on"`
}

// vnLane measures the value-numbering and ite-rewrite layer on the merging
// executor at double length — the exact configuration whose merged guards
// and ite-valued cursors the rewrites target. With check, vn-on must either
// cut wall time >= 1.5x or solver queries >= 2x against vn-off, and must
// actually have exercised the memo table (non-zero hits).
func vnLane(n, reps int, check bool, out string) {
	f := lower()
	off := vanillaRun("MergeTwoNVnOff", f, 2*n, reps, kleebench.Config{QCache: true, Merge: true, NoVN: true})
	on := vanillaRun("MergeTwoNVn", f, 2*n, reps, kleebench.Config{QCache: true, Merge: true})

	rep := vnReport{
		Benchmark:           "BenchmarkValueNumbering",
		Loop:                "figure1/skip_whitespace",
		GoVersion:           runtime.Version(),
		Runs:                []run{off, on},
		NsRatioOffOverOn:    ratio(off.NsPerOp, on.NsPerOp),
		QueryRatioOffOverOn: ratio(off.SolverQueries, on.SolverQueries),
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	enc = append(enc, '\n')
	fmt.Print(string(enc))
	if out != "" {
		if err := os.WriteFile(out, enc, 0o644); err != nil {
			fatal("write %s: %v", out, err)
		}
	}
	if check {
		if on.VNHits == 0 {
			fatal("vn check failed: value-numbering memo recorded zero hits")
		}
		if rep.NsRatioOffOverOn < 1.5 && rep.QueryRatioOffOverOn < 2.0 {
			fatal("vn check failed: ns off/on = %.2f (< 1.5) and queries off/on = %.2f (< 2.0) at merged n=%d",
				rep.NsRatioOffOverOn, rep.QueryRatioOffOverOn, 2*n)
		}
		fmt.Printf("vn check ok: ns off/on = %.2f, queries off/on = %.2f, vn hits %d, ite rewrites %d at merged n=%d\n",
			rep.NsRatioOffOverOn, rep.QueryRatioOffOverOn, on.VNHits, on.IteFusions, 2*n)
	}
}

// persistChildMaxLen is the bounded-check string length of the persist
// lane's workload: one above the paper's §3.3 minimum of 3, so the check is
// strictly stronger (verdicts are unchanged — the small-model theorems make
// length 3 sufficient) while the cold sweep does enough solver work for the
// cross-process speedup to be about the cache rather than process startup.
const persistChildMaxLen = 4

// persistChildRun is the -persist lane's hidden worker phase: one process,
// one sequential memorylessness sweep over the corpus through the persistent
// tier at -cache-dir, verdicts and counters printed to stdout in the line
// format persistChildExec parses. The parent runs it twice over the same
// directory; whether this process is the cold or the warm one is entirely a
// property of what the directory holds.
func persistChildRun(dir string, sample int) {
	if dir == "" {
		fatal("persist child: -cache-dir is required")
	}
	tier, err := diskcache.Open(dir, nil)
	if err != nil {
		fatal("persist child: %v", err)
	}
	loops := loopdb.Corpus()
	if sample > 0 && sample < len(loops) {
		loops = loops[:sample]
	}
	budget := engine.NewBudget(nil, engine.Limits{})
	start := time.Now()
	for _, l := range loops {
		f, err := l.Lower()
		if err != nil {
			fatal("persist child: lower %s: %v", l.Name, err)
		}
		r := memoryless.VerifyWith(f, memoryless.VerifyOptions{
			MaxLen: persistChildMaxLen, Budget: budget,
			Disk: tier.QueryStore(), Memo: tier.MemoStore(),
		})
		if r.Memoryless {
			fmt.Printf("verdict\t%s\tmemoryless\t%s\t%d\n", l.Name, r.Spec.Dir, r.Spec.Miss)
		} else {
			fmt.Printf("verdict\t%s\trejected\t%s\n", l.Name, r.Reason)
		}
	}
	elapsed := time.Since(start)
	if err := tier.Close(); err != nil {
		fatal("persist child: cache persist: %v", err)
	}
	fmt.Printf("done\t%d\t%d\t%d\t%d\n", elapsed.Nanoseconds(),
		budget.DiskHits(), budget.DiskMisses(), budget.DiskEvictions())
}

// childStats is one worker process's parsed output.
type childStats struct {
	verdicts            []string
	ns                  int64 // sweep time as measured inside the child
	wallNs              int64 // full process wall time, spawn included
	hits, misses, evics int64
}

// persistChildExec re-executes this binary as a -persist-child worker over
// dir and parses its stdout.
func persistChildExec(dir string, sample int) childStats {
	exe, err := os.Executable()
	if err != nil {
		fatal("persist: %v", err)
	}
	cmd := exec.Command(exe, "-persist-child", "-cache-dir", dir, "-sample", strconv.Itoa(sample))
	cmd.Stderr = os.Stderr
	wallStart := time.Now()
	raw, err := cmd.Output()
	wall := time.Since(wallStart)
	if err != nil {
		fatal("persist: child failed: %v", err)
	}
	st := childStats{wallNs: int64(wall)}
	for _, line := range strings.Split(string(raw), "\n") {
		switch {
		case strings.HasPrefix(line, "verdict\t"):
			st.verdicts = append(st.verdicts, line)
		case strings.HasPrefix(line, "done\t"):
			fields := strings.Split(line, "\t")
			if len(fields) != 5 {
				fatal("persist: malformed child trailer %q", line)
			}
			nums := make([]int64, 4)
			for i, f := range fields[1:] {
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					fatal("persist: malformed child trailer %q: %v", line, err)
				}
				nums[i] = v
			}
			st.ns, st.hits, st.misses, st.evics = nums[0], nums[1], nums[2], nums[3]
		}
	}
	if st.ns == 0 || len(st.verdicts) == 0 {
		fatal("persist: child produced no measurements")
	}
	return st
}

// persistReport is the BENCH_7.json schema: one corpus sweep by a cold
// process (empty cache directory) and one by a warm process (the cold run's
// persisted tier), with verdict identity and the cross-process speedup.
type persistReport struct {
	Benchmark string `json:"benchmark"`
	Corpus    string `json:"corpus"`
	GoVersion string `json:"go_version"`
	Loops     int    `json:"loops"`
	MaxLen    int    `json:"max_len"`
	// ColdNs/WarmNs are sweep times measured inside each child;
	// the *WallNs pair includes process spawn and exit.
	ColdNs         int64 `json:"cold_ns"`
	WarmNs         int64 `json:"warm_ns"`
	ColdWallNs     int64 `json:"cold_wall_ns"`
	WarmWallNs     int64 `json:"warm_wall_ns"`
	ColdDiskHits   int64 `json:"cold_disk_hits"`
	ColdDiskMisses int64 `json:"cold_disk_misses"`
	WarmDiskHits   int64 `json:"warm_disk_hits"`
	WarmDiskMisses int64 `json:"warm_disk_misses"`
	DiskEvictions  int64 `json:"disk_evictions"`
	Memoryless     int   `json:"memoryless"`
	// VerdictsIdentical is the correctness half of the lane: the warm
	// process must reproduce the cold verdicts byte for byte. A mismatch is
	// fatal even without -check.
	VerdictsIdentical   bool    `json:"verdicts_identical"`
	NsRatioColdOverWarm float64 `json:"ns_ratio_cold_over_warm"`
}

// persistLane measures the persistent tier across a process boundary: two
// child sweeps over one fresh cache directory, cold then warm. Verdict
// mismatch always fails; -check additionally requires the warm process to be
// strictly faster.
func persistLane(sample int, short, check bool, out, cacheBase string) {
	if short && sample == 0 {
		sample = 30
	}
	// A fresh directory (under -cache-dir when given, the system temp dir
	// otherwise) guarantees the first child really is cold.
	dir, err := os.MkdirTemp(cacheBase, "bench-persist-*")
	if err != nil {
		fatal("persist: %v", err)
	}
	defer os.RemoveAll(dir)

	cold := persistChildExec(dir, sample)
	warm := persistChildExec(dir, sample)

	identical := len(cold.verdicts) == len(warm.verdicts)
	if identical {
		for i := range cold.verdicts {
			if cold.verdicts[i] != warm.verdicts[i] {
				identical = false
				break
			}
		}
	}
	memless := 0
	for _, v := range cold.verdicts {
		if strings.Contains(v, "\tmemoryless\t") {
			memless++
		}
	}

	rep := persistReport{
		Benchmark:           "BenchmarkPersistentCache",
		Corpus:              "loopdb/curated",
		GoVersion:           runtime.Version(),
		Loops:               len(cold.verdicts),
		MaxLen:              persistChildMaxLen,
		ColdNs:              cold.ns,
		WarmNs:              warm.ns,
		ColdWallNs:          cold.wallNs,
		WarmWallNs:          warm.wallNs,
		ColdDiskHits:        cold.hits,
		ColdDiskMisses:      cold.misses,
		WarmDiskHits:        warm.hits,
		WarmDiskMisses:      warm.misses,
		DiskEvictions:       cold.evics + warm.evics,
		Memoryless:          memless,
		VerdictsIdentical:   identical,
		NsRatioColdOverWarm: ratio(cold.ns, warm.ns),
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	enc = append(enc, '\n')
	fmt.Print(string(enc))
	if out != "" {
		if err := os.WriteFile(out, enc, 0o644); err != nil {
			fatal("write %s: %v", out, err)
		}
	}

	if !identical {
		for i := range cold.verdicts {
			if i < len(warm.verdicts) && cold.verdicts[i] != warm.verdicts[i] {
				fmt.Fprintf(os.Stderr, "persist: first divergence:\n  cold: %s\n  warm: %s\n",
					cold.verdicts[i], warm.verdicts[i])
				break
			}
		}
		fatal("persist check failed: warm verdicts differ from cold (%d vs %d loops)",
			len(cold.verdicts), len(warm.verdicts))
	}
	if check {
		if warm.ns >= cold.ns {
			fatal("persist check failed: warm sweep (%v) not faster than cold (%v)",
				time.Duration(warm.ns), time.Duration(cold.ns))
		}
		if warm.hits == 0 {
			fatal("persist check failed: warm process recorded zero disk hits")
		}
		fmt.Printf("persist check ok: cold/warm = %.2fx over %d loops, warm disk hits %d\n",
			rep.NsRatioColdOverWarm, rep.Loops, warm.hits)
	}
}

// obsReport is the BENCH_5.json schema: the Figure 1 macro runs with
// instrumentation disabled vs enabled, and the gated hot-path micro numbers.
type obsReport struct {
	Benchmark string `json:"benchmark"`
	Loop      string `json:"loop"`
	GoVersion string `json:"go_version"`
	// Runs holds the macro measurements: obs disabled (budget without
	// handles — the default every caller gets) vs enabled (tracer + metrics
	// threaded via context).
	Runs []run `json:"runs"`
	// NsRatioEnabledOverDisabled is the macro cost of turning tracing on.
	NsRatioEnabledOverDisabled float64 `json:"ns_ratio_enabled_over_disabled"`
	// The micro lane times the batched-flush hot-path pattern (a plain local
	// counter flushed through the budget mirror every batch) against a bare
	// loop; its overhead is the gated number, since macro wall time at this
	// scale is noisier than the 2% bar.
	MicroIters           int     `json:"micro_iters"`
	MicroBatch           int     `json:"micro_batch"`
	MicroBareNs          int64   `json:"micro_bare_ns"`
	MicroDisabledNs      int64   `json:"micro_disabled_ns"`
	MicroEnabledNs       int64   `json:"micro_enabled_ns"`
	DisabledOverheadPct  float64 `json:"disabled_overhead_pct"`
	DisabledOverheadGate float64 `json:"disabled_overhead_gate_pct"`
}

// obsLane measures the observability instrumentation: macro ns/op on the
// Figure 1 vanilla run with obs off vs on, and the micro hot-path gate.
// Exits non-zero when the disabled-mode micro overhead exceeds 2%.
func obsLane(n, reps int, short bool, out string) {
	f := lower()
	disabled := vanillaRun("ObsDisabled", f, n, reps, kleebench.Config{QCache: true})
	tr, m := obs.New(), obs.NewMetrics()
	enabled := vanillaRun("ObsEnabled", f, n, reps, kleebench.Config{
		QCache: true,
		Ctx:    obs.NewContext(nil, tr, m),
	})
	enabled.Name = "ObsEnabled"

	iters := 50_000_000
	if short {
		iters = 5_000_000
	}
	// One flush per 256 hot iterations is still far more frequent than the
	// real layers (sat flushes once per SolveAssuming, symex once per
	// scheduled segment — thousands of iterations each).
	const batch = 256
	bareNs := bestOf(3, func() int64 { return hotPathBare(iters, batch) })
	disabledNs := bestOf(3, func() int64 {
		return hotPathBudget(iters, batch, engine.NewBudget(nil, engine.Limits{}))
	})
	enabledNs := bestOf(3, func() int64 {
		b := engine.NewBudget(nil, engine.Limits{}).SetObs(nil, obs.NewMetrics())
		return hotPathBudget(iters, batch, b)
	})

	rep := obsReport{
		Benchmark:                  "BenchmarkObsOverhead",
		Loop:                       "figure1/skip_whitespace",
		GoVersion:                  runtime.Version(),
		Runs:                       []run{disabled, enabled},
		NsRatioEnabledOverDisabled: ratio(enabled.NsPerOp, disabled.NsPerOp),
		MicroIters:                 iters,
		MicroBatch:                 batch,
		MicroBareNs:                bareNs,
		MicroDisabledNs:            disabledNs,
		MicroEnabledNs:             enabledNs,
		DisabledOverheadPct:        100 * (float64(disabledNs)/float64(bareNs) - 1),
		DisabledOverheadGate:       2.0,
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	enc = append(enc, '\n')
	fmt.Print(string(enc))
	if out != "" {
		if err := os.WriteFile(out, enc, 0o644); err != nil {
			fatal("write %s: %v", out, err)
		}
	}
	if rep.DisabledOverheadPct > rep.DisabledOverheadGate {
		fatal("obs check failed: disabled-mode hot-path overhead %.2f%% > %.1f%%",
			rep.DisabledOverheadPct, rep.DisabledOverheadGate)
	}
	fmt.Printf("obs check ok: disabled-mode hot-path overhead %.2f%% (gate %.1f%%), enabled/disabled macro ns ratio %.2f\n",
		rep.DisabledOverheadPct, rep.DisabledOverheadGate, rep.NsRatioEnabledOverDisabled)
}

// hotPathBare is the reference: batch-sized segments of data-dependent work
// with a plain local stat counter — the shape of the sat propagate loop and
// the symex instruction loop, which keep stats loop-local and flush only at
// segment boundaries.
func hotPathBare(iters, batch int) int64 {
	var acc int64
	start := time.Now()
	for done := 0; done < iters; done += batch {
		var local int64
		for i := 0; i < batch && done+i < iters; i++ {
			acc += acc>>1 ^ int64(done+i)
			local++
		}
		acc += local
	}
	sink = acc
	return int64(time.Since(start))
}

// hotPathBudget is the identical segmented loop under the instrumentation
// pattern the solver hot paths use: the local counter is flushed through
// the (nil-checked, mirror-charging) budget once per segment, never per
// iteration.
func hotPathBudget(iters, batch int, budget *engine.Budget) int64 {
	var acc int64
	start := time.Now()
	for done := 0; done < iters; done += batch {
		var local int64
		for i := 0; i < batch && done+i < iters; i++ {
			acc += acc>>1 ^ int64(done+i)
			local++
		}
		acc += local
		budget.AddPropagations(local)
	}
	sink = acc + budget.Propagations()
	return int64(time.Since(start))
}

// sink defeats dead-code elimination of the measurement loops.
var sink int64

// bestOf returns the minimum of n timings — the standard noise filter for
// micro measurements.
func bestOf(n int, f func() int64) int64 {
	best := f()
	for i := 1; i < n; i++ {
		if t := f(); t < best {
			best = t
		}
	}
	return best
}

func lower() *cir.Func {
	file, err := cc.Parse(figure1Loop)
	if err != nil {
		fatal("parse: %v", err)
	}
	f, err := cir.LowerFunc(file.Funcs[0], file)
	if err != nil {
		fatal("lower: %v", err)
	}
	return f
}

// vanillaRun measures the forking symbolic executor with per-fork
// feasibility checks, averaging over reps. The loop is re-lowered per rep so
// each rep gets a fresh interner (matching the per-pipeline cache scope).
func vanillaRun(name string, f *cir.Func, n, reps int, cfg kleebench.Config) run {
	r := run{Name: name, Mode: "vanilla", QCache: cfg.QCache, Length: n, Reps: reps, Merge: cfg.Merge, VN: !cfg.NoVN}
	var ns, queries, conflicts, hits, groups, vnhits, fusions int64
	for i := 0; i < reps; i++ {
		f = lower()
		m := kleebench.VanillaWith(f, n, 10*time.Minute, cfg)
		if m.TimedOut || m.Tests == 0 {
			fatal("%s: run failed: %+v", name, m)
		}
		ns += int64(m.Time)
		queries += int64(m.SolverQueries)
		conflicts += m.Conflicts
		hits += m.Cache.Hits()
		groups += m.Cache.Hits() + m.Cache.Misses
		vnhits += m.VNHits
		fusions += m.IteFusions
		r.Tests = m.Tests
		r.Paths = m.Paths
	}
	r.NsPerOp = ns / int64(reps)
	r.SolverQueries = queries / int64(reps)
	r.Conflicts = conflicts / int64(reps)
	r.VNHits = vnhits / int64(reps)
	r.IteFusions = fusions / int64(reps)
	if groups > 0 {
		r.CacheHitRate = float64(hits) / float64(groups)
	}
	return r
}

// strRun measures the summarised configuration for reference (the Figure 3
// comparison point).
func strRun(name string, prog vocab.Program, n, reps int) run {
	r := run{Name: name, Mode: "str", QCache: true, Length: n, Reps: reps}
	var ns, queries, conflicts, hits, groups int64
	for i := 0; i < reps; i++ {
		m := kleebench.Str(prog, n, 10*time.Minute)
		if m.TimedOut || m.Tests == 0 {
			fatal("%s: run failed: %+v", name, m)
		}
		ns += int64(m.Time)
		queries += int64(m.SolverQueries)
		conflicts += m.Conflicts
		hits += m.Cache.Hits()
		groups += m.Cache.Hits() + m.Cache.Misses
		r.Tests = m.Tests
	}
	r.NsPerOp = ns / int64(reps)
	r.SolverQueries = queries / int64(reps)
	r.Conflicts = conflicts / int64(reps)
	if groups > 0 {
		r.CacheHitRate = float64(hits) / float64(groups)
	}
	return r
}

func ratio(off, on int64) float64 {
	if on == 0 {
		if off == 0 {
			return 1
		}
		return float64(off) // cache eliminated the denominator entirely
	}
	return float64(off) / float64(on)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}
