package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"stringloops/internal/engine"
	"stringloops/internal/leakcheck"
	"stringloops/internal/loopdb"
	"stringloops/internal/obs"
	"stringloops/internal/service"
)

// telemetryReport is the BENCH_10.json schema: the provenance and exposition
// surface measured end to end — plain vs explain request cost, reconcile
// drift, the Prometheus scrape, the merged client+server trace, and the
// gated micro number for the disabled-mode hot-path cost of the spend
// collection behind provenance.
type telemetryReport struct {
	Benchmark string `json:"benchmark"`
	GoVersion string `json:"go_version"`

	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	Explained int64 `json:"explained"`

	PlainNsPerOp   int64 `json:"plain_ns_per_op"`
	ExplainNsPerOp int64 `json:"explain_ns_per_op"`
	// NsRatioExplainOverPlain is the macro cost of asking for provenance;
	// informational — request wall time at this scale is solver-dominated.
	NsRatioExplainOverPlain float64 `json:"ns_ratio_explain_over_plain"`

	// The correctness half: drift counts requests where the server's metric
	// registry disagreed with the summed budget spend; every explain response
	// must come back reconciled with per-attempt spends partitioning the
	// totals exactly.
	ReconcileDrift       int64 `json:"reconcile_drift"`
	ProvenanceReconciled bool  `json:"provenance_reconciled"`
	SpendPartitionExact  bool  `json:"spend_partition_exact"`

	PromValid    bool  `json:"prom_valid"`
	PromSeries   int   `json:"prom_series"`
	PromScrapeNs int64 `json:"prom_scrape_ns"`

	MergedTraceValid  bool `json:"merged_trace_valid"`
	MergedTraceEvents int  `json:"merged_trace_events"`
	TraceLanes        int  `json:"trace_lanes"`

	// The micro lane times the per-segment spend-collection pattern (reading
	// every budget counter into a totals struct, the work behind provenance
	// and reconciliation) against the bare instrumented loop from BENCH_5.
	// One collection per 4096 hot iterations is still far more frequent than
	// reality — provenance is collected once per request, and a request runs
	// at least tens of thousands of solver iterations.
	MicroIters           int     `json:"micro_iters"`
	MicroBatch           int     `json:"micro_batch"`
	MicroBareNs          int64   `json:"micro_bare_ns"`
	MicroTelemetryNs     int64   `json:"micro_telemetry_ns"`
	DisabledOverheadPct  float64 `json:"disabled_overhead_pct"`
	DisabledOverheadGate float64 `json:"disabled_overhead_gate_pct"`

	GoroutineLeaks int `json:"goroutine_leaks"`
}

// telemetryLane boots the daemon in-process with deterministic tracers on
// both sides, runs the corpus head plain and again with -explain, scrapes
// the Prometheus exposition, merges the client and server traces, and gates
// the whole provenance surface: zero drift, reconciled provenance whose
// attempt spends partition the totals, a valid scrape, a valid merged
// trace, and disabled-mode micro overhead within the PR 5 bar.
func telemetryLane(short, check bool, out string) {
	reqsPerPhase := 24
	if short {
		reqsPerPhase = 8
	}

	serverTracer := obs.NewDeterministic()
	clientTracer := obs.NewDeterministic()
	m := obs.NewMetrics()
	cfg := service.Config{
		MaxInFlight: runtime.GOMAXPROCS(0),
		QueueDepth:  64,
		Metrics:     m,
		Tracer:      serverTracer,
		Overload:    service.OverloadPolicy{Disable: true},
	}
	srv := service.New(cfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal("telemetry lane listen: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 8}}

	loops := loopdb.Corpus()[:6]
	cl := &service.Client{Base: base, HTTP: hc, Seed: 1, ClientID: "bench-telemetry", Tracer: clientTracer}
	ctx := context.Background()

	rep := telemetryReport{
		Benchmark:            "BenchmarkTelemetry",
		GoVersion:            runtime.Version(),
		DisabledOverheadGate: 2.0,
	}

	phase := func(explain bool) (nsPerOp int64) {
		start := time.Now()
		for i := 0; i < reqsPerPhase; i++ {
			l := loops[i%len(loops)]
			resp, err := cl.Summarize(ctx, service.Request{
				Source: l.Source, Func: l.FuncName, Explain: explain,
			})
			rep.Requests++
			if err != nil {
				fatal("telemetry lane request: %v", err)
			}
			rep.Completed++
			if !explain {
				if resp.Provenance != nil {
					fatal("telemetry lane: plain request carried provenance")
				}
				continue
			}
			rep.Explained++
			p := resp.Provenance
			if p == nil {
				fatal("telemetry lane: explain request returned no provenance")
			}
			if !p.Reconciled {
				rep.ProvenanceReconciled = false
				continue
			}
			var sum service.SpendTotals
			for _, a := range p.Attempts {
				if a.Spend != nil {
					sum.Add(*a.Spend)
				}
			}
			if sum != p.Totals {
				rep.SpendPartitionExact = false
			}
		}
		return int64(time.Since(start)) / int64(reqsPerPhase)
	}
	rep.ProvenanceReconciled = true
	rep.SpendPartitionExact = true
	rep.PlainNsPerOp = phase(false)
	rep.ExplainNsPerOp = phase(true)
	rep.NsRatioExplainOverPlain = ratio(rep.ExplainNsPerOp, rep.PlainNsPerOp)

	// Prometheus scrape through the real endpoint, validated like CI does.
	scrapeStart := time.Now()
	resp, err := hc.Get(base + "/metrics?format=prom")
	if err != nil {
		fatal("telemetry lane scrape: %v", err)
	}
	prom, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	rep.PromScrapeNs = int64(time.Since(scrapeStart))
	if err != nil {
		fatal("telemetry lane scrape read: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		fatal("telemetry lane scrape: status %d", resp.StatusCode)
	}
	rep.PromValid = obs.ValidatePrometheus(prom) == nil
	rep.PromSeries = strings.Count(string(prom), "# TYPE ")

	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	httpSrv.Shutdown(sctx)
	scancel()
	<-httpDone
	hc.CloseIdleConnections()

	// Merge the two sides' traces the way tracecheck -merge does.
	var clientBuf, serverBuf bytes.Buffer
	if err := clientTracer.WriteChromeTrace(&clientBuf); err != nil {
		fatal("telemetry lane client trace: %v", err)
	}
	if err := serverTracer.WriteChromeTrace(&serverBuf); err != nil {
		fatal("telemetry lane server trace: %v", err)
	}
	merged, err := obs.MergeChromeTraces(clientBuf.Bytes(), serverBuf.Bytes())
	if err != nil {
		fatal("telemetry lane trace merge: %v", err)
	}
	rep.MergedTraceValid = obs.ValidateChromeTrace(merged) == nil
	rep.MergedTraceEvents, rep.TraceLanes = countMergedTrace(merged)

	snap := m.Snapshot()
	rep.ReconcileDrift = snap.Counters[service.MSvcReconcileDrift]

	// Micro gate: the spend-collection pattern against the bare instrumented
	// loop, best-of-3 like the BENCH_5 lane.
	iters := 50_000_000
	if short {
		iters = 5_000_000
	}
	const batch = 4096
	rep.MicroIters, rep.MicroBatch = iters, batch
	rep.MicroBareNs = bestOf(3, func() int64 {
		return hotPathBudget(iters, batch, engine.NewBudget(nil, engine.Limits{}))
	})
	rep.MicroTelemetryNs = bestOf(3, func() int64 {
		return hotPathSpendCollect(iters, batch, engine.NewBudget(nil, engine.Limits{}))
	})
	rep.DisabledOverheadPct = 100 * (float64(rep.MicroTelemetryNs)/float64(rep.MicroBareNs) - 1)

	tb := &benchTB{}
	leakcheck.CheckWithin(tb, 10*time.Second)
	rep.GoroutineLeaks = tb.leaks

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal("telemetry lane marshal: %v", err)
	}
	enc = append(enc, '\n')
	fmt.Print(string(enc))
	if out != "" {
		if err := os.WriteFile(out, enc, 0o644); err != nil {
			fatal("write %s: %v", out, err)
		}
	}

	if check {
		if rep.ReconcileDrift != 0 {
			fatal("telemetry check failed: %d requests with budget<->metrics drift", rep.ReconcileDrift)
		}
		if !rep.ProvenanceReconciled {
			fatal("telemetry check failed: explain responses came back unreconciled")
		}
		if !rep.SpendPartitionExact {
			fatal("telemetry check failed: per-attempt spends do not partition the totals")
		}
		if !rep.PromValid {
			fatal("telemetry check failed: /metrics?format=prom is not valid exposition format")
		}
		if !rep.MergedTraceValid || rep.MergedTraceEvents == 0 {
			fatal("telemetry check failed: merged client+server trace invalid or empty")
		}
		if rep.TraceLanes < len(loops) {
			fatal("telemetry check failed: %d trace lanes for %d distinct requests", rep.TraceLanes, rep.Requests)
		}
		if rep.DisabledOverheadPct > rep.DisabledOverheadGate {
			fatal("telemetry check failed: disabled-mode spend-collection overhead %.2f%% > %.1f%%",
				rep.DisabledOverheadPct, rep.DisabledOverheadGate)
		}
		if rep.GoroutineLeaks != 0 {
			fatal("telemetry check failed: %d leaked goroutines", rep.GoroutineLeaks)
		}
		fmt.Printf("telemetry check ok: %d requests (%d explained), drift 0, %d prom series, %d merged events on %d lanes, overhead %.2f%%\n",
			rep.Requests, rep.Explained, rep.PromSeries, rep.MergedTraceEvents, rep.TraceLanes, rep.DisabledOverheadPct)
	}
}

// hotPathSpendCollect is hotPathBudget plus one full spend collection per
// segment — every budget counter read into a totals struct and folded, the
// exact work the server does once per request to build provenance and
// reconcile it. The gate says this stays within the BENCH_5 bar even at a
// per-segment (not per-request) cadence.
func hotPathSpendCollect(iters, batch int, budget *engine.Budget) int64 {
	var acc, fold int64
	start := time.Now()
	for done := 0; done < iters; done += batch {
		var local int64
		for i := 0; i < batch && done+i < iters; i++ {
			acc += acc>>1 ^ int64(done+i)
			local++
		}
		acc += local
		budget.AddPropagations(local)
		fold += budget.Conflicts() + budget.Propagations() + budget.Forks() + budget.Nodes() +
			budget.CacheHits() + budget.CacheMisses() + budget.DiskHits() + budget.DiskMisses() +
			budget.DiskEvictions() + budget.VNHits() + budget.IteFusions() + budget.BlastHits() +
			budget.SimplifyCalls() + budget.Merges() + budget.MergeItes()
	}
	sink = acc + fold
	return int64(time.Since(start))
}

// countMergedTrace returns the merged trace's duration-event count and the
// number of distinct (pid, tid) lanes carrying them.
func countMergedTrace(data []byte) (events, lanes int) {
	var tr struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			PID int    `json:"pid"`
			TID int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		fatal("telemetry lane: merged trace unreadable: %v", err)
	}
	seen := map[int]bool{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		events++
		seen[ev.TID] = true
	}
	return events, len(seen)
}
