// Command diffuzz runs the differential fuzzer: random string loops in the
// supported C subset, cross-checked on random inputs through the concrete
// interpreter (ground truth), symbolic-execution replay, and the synthesized
// gadget summary. Any disagreement is printed as a minimized, seeded,
// reproducible finding and the exit status is 1.
//
// Usage:
//
//	diffuzz -seeds 500 -j 8
//	diffuzz -seed 123 -seeds 1 -v        # re-check one generator seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stringloops/internal/cliflags"
	"stringloops/internal/diffuzz"
	"stringloops/internal/diskcache"
	"stringloops/internal/engine"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 500, "number of generated programs")
		base     = flag.Uint64("seed", 1, "first generator seed")
		inputs   = flag.Int("inputs", 8, "random input buffers per program")
		maxlen   = flag.Int("maxlen", 6, "max content bytes per input buffer")
		jobs     = cliflags.Jobs(nil, 0)
		synth    = flag.Duration("synth", 300*time.Millisecond, "per-program synthesis budget (<=0 disables the summary stage)")
		maxex    = flag.Int("maxex", 3, "bounded-verification string size (paper max_ex_size)")
		timeout  = flag.Duration("timeout", 0, "overall wall-clock budget (0 = none)")
		nomin    = flag.Bool("nomin", false, "skip finding minimization")
		qcache   = cliflags.QCache(nil, false)
		merge    = cliflags.Merge(nil, false)
		vn       = cliflags.VN(nil, true)
		cacheDir = cliflags.CacheDir(nil)
		cacheMax = cliflags.CacheMaxBytes(nil)
		faults   = flag.Float64("faults", 0, "fault-injection intensity in [0,1]: seeded skip-safe fault storms over the pipeline under test (0 disables)")
		fseed    = flag.Uint64("faultseed", 0, "decorrelate fault schedules from generator seeds")
		verbose  = flag.Bool("v", false, "print per-finding sources even when clean")
	)
	obsFlags := cliflags.Obs(nil)
	flag.Parse()
	sess, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "diffuzz: %v\n", err)
		os.Exit(2)
	}
	tier, err := diskcache.OpenSized(*cacheDir, *cacheMax, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diffuzz: %v\n", err)
		os.Exit(2)
	}

	opts := diffuzz.Options{
		Seeds:        *seeds,
		BaseSeed:     *base,
		Inputs:       *inputs,
		MaxInputLen:  *maxlen,
		Jobs:         *jobs,
		SynthTimeout: *synth,
		MaxExSize:    *maxex,
		NoMinimize:   *nomin,
		QCache:       *qcache,
		Merge:        *merge,
		NoVN:         !*vn,
		Cache:        tier,
		FaultRate:    *faults,
		FaultSeed:    *fseed,
	}
	if *synth <= 0 {
		opts.SynthTimeout = -time.Millisecond
	}
	// A session or overall timeout both ride the root budget: per-seed
	// budgets derive from its context, so the obs handles reach every
	// pipeline under test without diffuzz-internal wiring.
	if *timeout > 0 || sess.Tracer != nil {
		opts.Budget = engine.NewBudget(sess.Context(nil), engine.Limits{Timeout: *timeout})
	}

	rep := diffuzz.Run(opts)
	if err := tier.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "diffuzz: cache persist: %v\n", err)
	}

	fmt.Printf("diffuzz: %d programs (%d synthesized, %d memoryless), %d checks, %d skipped, %s\n",
		rep.Programs, rep.Synthesized, rep.Memoryless, rep.Checks, rep.Skipped,
		rep.Elapsed.Round(time.Millisecond))

	if err := sess.Finish(os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "diffuzz: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Findings) == 0 {
		fmt.Println("diffuzz: no findings")
		if *verbose {
			fmt.Printf("diffuzz: seeds %d..%d clean\n", *base, *base+uint64(*seeds)-1)
		}
		return
	}
	for i, f := range rep.Findings {
		fmt.Printf("\n--- finding %d/%d ---\n%s", i+1, len(rep.Findings), f)
		fmt.Printf("reproduce: diffuzz -seed %d -seeds 1\n", f.Seed)
	}
	os.Exit(1)
}
