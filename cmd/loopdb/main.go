// Command loopdb builds the loop database and reproduces Table 2 (loops
// remaining after each automatic filter, per program) by running the real
// filter pipeline over the generated population, plus the §4.1.2 manual
// exclusion accounting with -manual.
package main

import (
	"flag"
	"fmt"
	"os"

	"stringloops/internal/cir"
	"stringloops/internal/loopdb"
)

func main() {
	manual := flag.Bool("manual", false, "also print the §4.1.2 manual-filter accounting")
	flag.Parse()

	fmt.Println("Table 2. Loops remaining after each additional filter.")
	fmt.Printf("%-10s %8s %8s %8s %8s %8s\n",
		"", "Initial", "Inner", "Pointer", "Array", "Multiple")
	fmt.Printf("%-10s %8s %8s %8s %8s %8s\n",
		"", "loops", "loops", "calls", "writes", "ptr reads")

	pop := loopdb.Population()
	var total cir.PipelineCounts
	for _, prog := range loopdb.Programs {
		var funcs []*cir.Func
		for _, l := range loopdb.ByProgram(pop, prog) {
			f, err := l.Lower()
			if err != nil {
				fmt.Fprintf(os.Stderr, "loopdb: %v\n", err)
				os.Exit(1)
			}
			cir.Mem2Reg(f)
			funcs = append(funcs, f)
		}
		_, c := cir.ClassifyLoops(funcs)
		fmt.Printf("%-10s %8d %8d %8d %8d %8d\n",
			prog, c.Initial, c.Inner, c.PtrCalls, c.ArrayWrites, c.MultiReads)
		total.Initial += c.Initial
		total.Inner += c.Inner
		total.PtrCalls += c.PtrCalls
		total.ArrayWrites += c.ArrayWrites
		total.MultiReads += c.MultiReads
	}
	fmt.Printf("%-10s %8d %8d %8d %8d %8d\n",
		"Total", total.Initial, total.Inner, total.PtrCalls, total.ArrayWrites, total.MultiReads)

	if *manual {
		fmt.Println()
		fmt.Println("Manual filter (§4.1.2): candidate loops excluded by reason.")
		perCat := map[loopdb.Category]int{}
		memoryless := 0
		for _, l := range pop {
			switch l.Category {
			case loopdb.CatGoto, loopdb.CatIO, loopdb.CatNoPtrReturn,
				loopdb.CatReturnInBody, loopdb.CatTooManyArgs, loopdb.CatMultiOutput:
				perCat[l.Category]++
			case loopdb.CatMemoryless:
				memoryless++
			}
		}
		excluded := 0
		for _, cat := range []loopdb.Category{loopdb.CatGoto, loopdb.CatIO,
			loopdb.CatNoPtrReturn, loopdb.CatReturnInBody,
			loopdb.CatTooManyArgs, loopdb.CatMultiOutput} {
			fmt.Printf("  %-20s %4d\n", cat, perCat[cat])
			excluded += perCat[cat]
		}
		fmt.Printf("  %-20s %4d\n", "total excluded", excluded)
		fmt.Printf("  %-20s %4d\n", "memoryless loops", memoryless)
	}
}
