// Command tracecheck validates a Chrome trace-event JSON file produced by
// the -trace flag (internal/obs). CI runs it after the traced loopsum smoke
// so a schema regression in the exporter fails the lane instead of silently
// producing files chrome://tracing cannot open.
//
//	tracecheck trace.json [more.json ...]
//	tracecheck -merge out.json client.json server.json
//
// With -merge, the client and server traces from one run are joined into a
// single timeline: one process per side, one lane per propagated trace id,
// server spans anchored under the matching client request. The merged file
// is validated and canonical — the same inputs always produce the same
// bytes, so CI can diff it across worker counts.
package main

import (
	"flag"
	"fmt"
	"os"

	"stringloops/internal/obs"
)

func main() {
	merge := flag.Bool("merge", false, "merge a client and a server trace into one timeline: -merge out.json client.json server.json")
	flag.Parse()

	if *merge {
		os.Exit(runMerge(flag.Args()))
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json [more.json ...]\n       tracecheck -merge out.json client.json server.json")
		os.Exit(2)
	}
	code := 0
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err == nil {
			err = obs.ValidateChromeTrace(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	os.Exit(code)
}

func runMerge(args []string) int {
	if len(args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck -merge out.json client.json server.json")
		return 2
	}
	out, clientPath, serverPath := args[0], args[1], args[2]
	client, err := os.ReadFile(clientPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		return 1
	}
	server, err := os.ReadFile(serverPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		return 1
	}
	merged, err := obs.MergeChromeTraces(client, server)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: merge: %v\n", err)
		return 1
	}
	if err := obs.ValidateChromeTrace(merged); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: merged trace invalid: %v\n", err)
		return 1
	}
	if err := os.WriteFile(out, merged, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		return 1
	}
	fmt.Printf("%s: merged %s + %s (%d bytes)\n", out, clientPath, serverPath, len(merged))
	return 0
}
