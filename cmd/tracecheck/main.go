// Command tracecheck validates a Chrome trace-event JSON file produced by
// the -trace flag (internal/obs). CI runs it after the traced loopsum smoke
// so a schema regression in the exporter fails the lane instead of silently
// producing files chrome://tracing cannot open.
//
//	tracecheck trace.json [more.json ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"stringloops/internal/obs"
)

func main() {
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json [more.json ...]")
		os.Exit(2)
	}
	code := 0
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err == nil {
			err = obs.ValidateChromeTrace(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	os.Exit(code)
}
