// Command native-bench reproduces §4.4 / Figure 5: native execution time of
// each original loop (its byte-at-a-time transliteration) against its
// summary compiled to optimized routines, over the four ~20-character
// workload strings, sorted by speedup. Bars above 1x favour the summary;
// like the paper, no claim is made that the rewrite always wins — the
// workload dominates.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"stringloops/internal/harness"
	"stringloops/internal/nativeopt"
)

func main() {
	iterations := flag.Int("iters", 200000, "iterations over the workload (paper: 10M)")
	flag.Parse()

	loops := harness.SynthesizedCorpus()
	workload := nativeopt.Workload()
	var comps []nativeopt.Comparison
	for _, l := range loops {
		prog, _ := harness.SummaryFor(l)
		c, err := nativeopt.Compare(l.Name, l.Ref, prog, workload, *iterations)
		if err != nil {
			fmt.Fprintf(os.Stderr, "native-bench: %v\n", err)
			os.Exit(1)
		}
		comps = append(comps, c)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].Speedup > comps[j].Speedup })

	fmt.Printf("Figure 5. Native speedup of summary over original (%d iterations x %d strings).\n",
		*iterations, len(workload))
	faster := 0
	for _, c := range comps {
		marker := "-"
		if c.Speedup > 1 {
			marker = "+"
			faster++
		}
		fmt.Printf("  %s %-32s %8.2fx   (loop %8.2fms, summary %8.2fms)\n",
			marker, c.Name, c.Speedup,
			float64(c.Original.Microseconds())/1000,
			float64(c.Summary.Microseconds())/1000)
	}
	fmt.Printf("summary faster on %d of %d loops\n", faster, len(comps))
}
