// Command memverify reproduces §3.3: bounded verification that each of the
// 115 corpus loops is memoryless (on strings of length <= 3, which the
// small-model theorems of §3 extend to all lengths). The paper proves 85 of
// 115 in under three seconds per loop on average.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stringloops/internal/cliflags"
	"stringloops/internal/diskcache"
	"stringloops/internal/engine"
	"stringloops/internal/loopdb"
	"stringloops/internal/memoryless"
)

func main() {
	maxLen := flag.Int("maxlen", 3, "bounded-check string length")
	verbose := flag.Bool("v", false, "per-loop results")
	jobs := cliflags.Jobs(nil, 1)
	merge := cliflags.Merge(nil, false)
	vn := cliflags.VN(nil, true)
	cacheDir := cliflags.CacheDir(nil)
	cacheMaxBytes := cliflags.CacheMaxBytes(nil)
	obsFlags := cliflags.Obs(nil)
	flag.Parse()
	sess, err := obsFlags.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "memverify: %v\n", err)
		os.Exit(2)
	}
	tier, err := diskcache.OpenSized(*cacheDir, *cacheMaxBytes, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memverify: %v\n", err)
		os.Exit(2)
	}

	// Verify on a worker pool (each loop builds its own solver pipeline),
	// then aggregate serially in corpus order so the output is stable.
	loops := loopdb.Corpus()
	reports := make([]memoryless.Report, len(loops))
	lowerErrs := make([]error, len(loops))
	engine.MapWorker(engine.Workers(*jobs, len(loops)), len(loops), func(worker, i int) {
		l := loops[i]
		item := sess.Item(l.Name, l.Program, worker)
		f, err := l.Lower()
		if err != nil {
			lowerErrs[i] = err
			item.Finish("lower-error")
			return
		}
		budget := engine.NewBudget(nil, engine.Limits{}).
			SetObs(item.Tracer(), item.Metrics())
		reports[i] = memoryless.VerifyWith(f, memoryless.VerifyOptions{
			MaxLen: *maxLen, Budget: budget, Merge: *merge, NoVN: !*vn,
			Disk: tier.QueryStore(), Memo: tier.MemoStore(),
		})
		outcome := "rejected"
		if reports[i].Memoryless {
			outcome = "memoryless"
		}
		item.Finish(outcome)
	})

	verified, total := 0, 0
	var elapsed time.Duration
	perProg := map[string][2]int{}
	for i, l := range loops {
		if lowerErrs[i] != nil {
			fmt.Fprintf(os.Stderr, "memverify: %v\n", lowerErrs[i])
			os.Exit(1)
		}
		r := reports[i]
		total++
		elapsed += r.Elapsed
		pp := perProg[l.Program]
		pp[1]++
		if r.Memoryless {
			verified++
			pp[0]++
			if *verbose {
				fmt.Printf("%-32s memoryless (%s spec, %v)\n", l.Name, r.Spec.Dir, r.Elapsed.Round(time.Millisecond))
			}
		} else if *verbose {
			fmt.Printf("%-32s rejected: %s\n", l.Name, r.Reason)
		}
		perProg[l.Program] = pp
	}
	fmt.Println("Memorylessness verification (§3.3):")
	for _, prog := range loopdb.Programs {
		pp := perProg[prog]
		if pp[1] == 0 {
			continue
		}
		fmt.Printf("  %-10s %3d/%d\n", prog, pp[0], pp[1])
	}
	fmt.Printf("verified %d of %d loops; average %.3fs per loop (paper: 85/115, <3s)\n",
		verified, total, elapsed.Seconds()/float64(total))
	if err := tier.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "memverify: cache persist: %v\n", err)
	}
	if err := sess.Finish(os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "memverify: %v\n", err)
		os.Exit(1)
	}
}
