// Command symex-bench reproduces the symbolic-execution study of §4.3:
// Figure 3 (-figure3: mean time over all summarised loops for str.KLEE vs
// vanilla.KLEE as the symbolic string length grows) and Figure 4 (-figure4:
// per-loop speedup at a fixed length, sorted). Vanilla runs are capped by
// -timeout, mirroring the paper's 240-second cap; capped runs make the
// reported speedups lower bounds.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"stringloops/internal/harness"
	"stringloops/internal/kleebench"
)

func main() {
	figure3 := flag.Bool("figure3", false, "print Figure 3 series")
	figure4 := flag.Bool("figure4", false, "print Figure 4 speedups")
	timeout := flag.Duration("timeout", 5*time.Second, "per-run cap (paper: 240s)")
	minLen := flag.Int("minlen", 4, "smallest symbolic string length")
	maxLen := flag.Int("maxlen", 20, "largest symbolic string length")
	step := flag.Int("step", 2, "length step for Figure 3")
	fig4Len := flag.Int("fig4len", 13, "symbolic length for Figure 4 (paper: 13)")
	sample := flag.Int("sample", 0, "restrict to the first N summarised loops (0 = all 77)")
	flag.Parse()
	if !*figure3 && !*figure4 {
		*figure3, *figure4 = true, true
	}

	loops := harness.SynthesizedCorpus()
	if *sample > 0 && *sample < len(loops) {
		loops = loops[:*sample]
	}
	fmt.Printf("benchmarking %d summarised loops, per-run cap %v\n\n", len(loops), *timeout)

	if *figure3 {
		fmt.Println("Figure 3. Mean time to execute all loops (seconds).")
		fmt.Printf("%8s %14s %14s %10s\n", "length", "vanilla.KLEE", "str.KLEE", "timeouts")
		for n := *minLen; n <= *maxLen; n += *step {
			var vTotal, sTotal time.Duration
			vTimeouts := 0
			for _, l := range loops {
				f, err := l.Lower()
				if err != nil {
					fmt.Fprintf(os.Stderr, "symex-bench: %v\n", err)
					os.Exit(1)
				}
				prog, _ := harness.SummaryFor(l)
				v := kleebench.Vanilla(f, n, *timeout)
				s := kleebench.Str(prog, n, *timeout)
				vTotal += v.Time
				sTotal += s.Time
				if v.TimedOut {
					vTimeouts++
				}
			}
			fmt.Printf("%8d %14.3f %14.3f %10d\n",
				n,
				vTotal.Seconds()/float64(len(loops)),
				sTotal.Seconds()/float64(len(loops)),
				vTimeouts)
		}
		fmt.Println()
	}

	if *figure4 {
		fmt.Printf("Figure 4. Speedup per loop at symbolic length %d, sorted.\n", *fig4Len)
		type entry struct {
			name    string
			speedup float64
			capped  bool
		}
		var entries []entry
		for _, l := range loops {
			f, err := l.Lower()
			if err != nil {
				fmt.Fprintf(os.Stderr, "symex-bench: %v\n", err)
				os.Exit(1)
			}
			prog, _ := harness.SummaryFor(l)
			v := kleebench.Vanilla(f, *fig4Len, *timeout)
			s := kleebench.Str(prog, *fig4Len, *timeout)
			entries = append(entries, entry{l.Name, kleebench.Speedup(v, s), v.TimedOut})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].speedup > entries[j].speedup })
		var speedups []float64
		for _, e := range entries {
			capped := ""
			if e.capped {
				capped = " (vanilla capped: lower bound)"
			}
			fmt.Printf("  %-32s %10.1fx%s\n", e.name, e.speedup, capped)
			speedups = append(speedups, e.speedup)
		}
		if len(speedups) > 0 {
			median := speedups[len(speedups)/2]
			fmt.Printf("median speedup: %.1fx (paper: 79x)\n", median)
		}
	}
}
