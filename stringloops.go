// Package stringloops computes summaries of string loops in C, reproducing
// "Computing Summaries of String Loops in C for Better Testing and
// Refactoring" (PLDI 2019).
//
// Given C source containing a memoryless string loop — a loop over a
// char* that carries no information between iterations, such as
//
//	char *skip(char *s) {
//	    while (*s == ' ' || *s == '\t')
//	        s++;
//	    return s;
//	}
//
// Summarize synthesises an equivalent straight-line program over the C
// standard string functions (here: s + strspn(s, " \t")) using
// counterexample-guided inductive synthesis over a built-in symbolic
// execution engine and SAT-backed string solver. The summary is checked
// equivalent on all strings up to a small bound; when the loop additionally
// passes the memorylessness verification (VerifyMemoryless), the paper's
// small-model theorems extend that equivalence to strings of every length.
//
// Summaries serve three applications: replacing loops with library calls
// (refactoring, Summary.C), accelerating symbolic execution by dispatching
// loops to a string solver, and speeding up native execution through
// vendor-optimised string routines. The cmd/ directory reproduces every
// table and figure of the paper's evaluation; see DESIGN.md and
// EXPERIMENTS.md.
package stringloops

import (
	"time"

	"stringloops/internal/core"
	"stringloops/internal/diskcache"
)

// Options configures Summarize. The zero value matches the paper's main
// experiment: the full 13-gadget vocabulary, maximum program size 9,
// character sets of up to 3 characters, bounded equivalence on strings of
// length up to 3, and a 30-second budget.
type Options struct {
	// Vocabulary restricts the gadgets, given as Table 1 opcode letters
	// (e.g. "MPNIFV", the paper's best reduced vocabulary). Empty means all.
	Vocabulary string
	// MaxProgramSize bounds the encoded summary length.
	MaxProgramSize int
	// MaxSetSize bounds strspn-family set arguments.
	MaxSetSize int
	// MaxExampleLength is the bounded-equivalence string length.
	MaxExampleLength int
	// Timeout bounds synthesis.
	Timeout time.Duration
	// RequireMemoryless makes Summarize fail unless the §3 verification
	// proves the loop memoryless, upgrading the bounded equivalence to all
	// string lengths.
	RequireMemoryless bool
	// Merge enables state-merging symbolic execution throughout the
	// pipeline: paths that reconverge at control-flow join points fold into
	// one state with ite-merged values instead of being enumerated.
	Merge bool
	// NoVN disables the value-numbering rewrite layer in every solver chain
	// of the pipeline; inverted so the zero Options keeps it on.
	NoVN bool
	// CacheDir, when non-empty, backs the run with the persistent cache
	// tier: solver counterexamples (keyed by canonical, interner-independent
	// query hashes) and whole-loop summary memos (keyed by the loop's
	// canonical structural hash) are warm-started from the directory before
	// the run and written back after it, so repeated runs — in this process
	// or another — skip work they have already done. A corrupt or missing
	// cache file degrades to a cold start, never a wrong answer.
	CacheDir string
	// CacheMaxBytes, when positive, bounds the persistent cache tier by
	// total resident bytes (keys plus values) in addition to the built-in
	// entry-count cap; least-recently-used records are evicted first. Zero
	// means no byte bound.
	CacheMaxBytes int64
}

// Summary is a synthesised loop summary.
type Summary = core.Summary

// MemorylessReport is the §3 verification outcome.
type MemorylessReport = core.MemorylessReport

// TestInput is a generated covering test (see Summary.CoveringInputs).
type TestInput = core.TestInput

// Candidate is a loop classified by the automatic filter pipeline.
type Candidate = core.Candidate

// Errors re-exported from the pipeline.
var (
	ErrNotFound       = core.ErrNotFound
	ErrNoLoopFunction = core.ErrNoLoopFunction
	ErrNotMemoryless  = core.ErrNotMemoryless
)

func (o Options) toCore() core.Options {
	return core.Options{
		Vocabulary:        o.Vocabulary,
		MaxProgramSize:    o.MaxProgramSize,
		MaxSetSize:        o.MaxSetSize,
		MaxExampleLength:  o.MaxExampleLength,
		Timeout:           o.Timeout,
		RequireMemoryless: o.RequireMemoryless,
		Merge:             o.Merge,
		NoVN:              o.NoVN,
	}
}

// Summarize synthesises a summary for the first char *f(char *) function in
// the C source.
func Summarize(source string, opts Options) (*Summary, error) {
	return SummarizeFunc(source, "", opts)
}

// SummarizeFunc synthesises a summary for the named function.
func SummarizeFunc(source, funcName string, opts Options) (*Summary, error) {
	copts := opts.toCore()
	tier, err := diskcache.OpenSized(opts.CacheDir, opts.CacheMaxBytes, nil)
	if err != nil {
		return nil, err
	}
	copts.Cache = tier
	s, serr := core.Summarize(source, funcName, copts)
	// Persistence is best-effort: a failed snapshot costs the next run a
	// cold start, never this run's result.
	_ = tier.Close()
	return s, serr
}

// VerifyMemoryless runs the §3 bounded memorylessness verification on the
// named function (empty name picks the first char *f(char *) function).
func VerifyMemoryless(source, funcName string) (*MemorylessReport, error) {
	return core.VerifyMemoryless(source, funcName)
}

// CheckEquivalence verifies an encoded summary (the Table 1 byte encoding)
// against the named loop on all strings up to maxLen, returning a
// counterexample input when they differ.
func CheckEquivalence(source, funcName, encodedSummary string, maxLen int) (ok bool, counterexample string, err error) {
	return core.CheckEquivalence(source, funcName, encodedSummary, maxLen)
}

// FindCandidates runs the automatic loop-filter pipeline of §4.1.1 over all
// functions in the source, reporting each loop's fate ("candidate" loops are
// the ones worth summarising).
func FindCandidates(source string) ([]Candidate, error) {
	return core.FindCandidates(source)
}

// Rung identifies a level of SummarizeResilient's graceful-degradation
// ladder (full summary, memorylessness verdict, covering inputs, concrete
// smoke run, failed).
type Rung = core.Rung

// The ladder rungs, best first.
const (
	RungFull       = core.RungFull
	RungMemoryless = core.RungMemoryless
	RungCovering   = core.RungCovering
	RungSmoke      = core.RungSmoke
	RungFailed     = core.RungFailed
)

// Outcome is the structured result of a resilient summarisation: the rung
// reached, its payload, and the attempt history (limits, errors, panics).
type Outcome = core.Outcome

// AttemptRecord is one supervised attempt at one rung of an Outcome.
type AttemptRecord = core.AttemptRecord

// PanicError is the typed error a recovered panic surfaces as; use errors.As
// to detect one in an Outcome's attempt history or a batch result.
type PanicError = core.PanicError

// SummarizeResilient is Summarize with supervision: panics are isolated into
// typed errors, budget exhaustion is retried under escalating limits, and
// when the full summary stays out of reach the result degrades rung by rung
// instead of failing outright. With default options it attempts each rung up
// to three times under the same Timeout as Summarize.
func SummarizeResilient(source, funcName string, opts Options) Outcome {
	copts := opts.toCore()
	tier, err := diskcache.OpenSized(opts.CacheDir, opts.CacheMaxBytes, nil)
	if err != nil {
		return Outcome{Rung: RungFailed, Err: err}
	}
	copts.Cache = tier
	out := core.SummarizeResilient(source, funcName, core.ResilientOptions{Options: copts})
	_ = tier.Close()
	return out
}

// IdiomRewrite is the outcome of RewriteIdiom.
type IdiomRewrite = core.IdiomRewrite

// RewriteIdiom runs the LoopIdiomRecognize-style compiler pass on the named
// function: the loop is summarised, the summary compiled to loop-free IR
// over C standard-library calls, and the replacement proven equivalent — the
// compiler-writer application of §4.4.
func RewriteIdiom(source, funcName string, timeout time.Duration) (*IdiomRewrite, error) {
	return core.RewriteIdiom(source, funcName, timeout)
}

// CheckRefactoring verifies that a rewritten function — typically the loop
// replaced by standard-library calls, which the symbolic executor models
// directly — behaves identically to the original on all strings up to maxLen
// and on NULL, returning a distinguishing input otherwise. This validates
// §4.5-style patches before submitting them.
func CheckRefactoring(source, originalName, refactoredName string, maxLen int) (ok bool, counterexample string, err error) {
	return core.CheckRefactoring(source, originalName, refactoredName, maxLen)
}
