// Benchmarks regenerating the paper's evaluation, one per table and figure
// (plus the design ablations of DESIGN.md §5). Absolute times are this
// implementation's, not the paper's KLEE+Z3 testbed; EXPERIMENTS.md records
// the shape comparison. Full-scale reproductions are the cmd/ tools; these
// benches exercise the same code paths at benchmark-friendly sizes.
package stringloops_test

import (
	"testing"
	"time"

	"stringloops/internal/bv"
	"stringloops/internal/cc"
	"stringloops/internal/cegis"
	"stringloops/internal/cir"
	"stringloops/internal/gp"
	"stringloops/internal/harness"
	"stringloops/internal/kleebench"
	"stringloops/internal/loopdb"
	"stringloops/internal/memoryless"
	"stringloops/internal/nativeopt"
	"stringloops/internal/sat"
	"stringloops/internal/strsolver"
	"stringloops/internal/vocab"
)

const figure1Loop = `
#define whitespace(c) (((c) == ' ') || ((c) == '\t'))
char* loopFunction(char* line) {
  char *p;
  for (p = line; p && *p && whitespace (*p); p++)
    ;
  return p;
}`

func lowerBench(b *testing.B, src string) *cir.Func {
	b.Helper()
	file, err := cc.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	f, err := cir.LowerFunc(file.Funcs[0], file)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkTable2Filters runs the automatic filter pipeline (§4.1.1) over
// one program's generated population — one Table 2 row per iteration.
func BenchmarkTable2Filters(b *testing.B) {
	loops := loopdb.ByProgram(loopdb.Population(), "grep")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var funcs []*cir.Func
		for _, l := range loops {
			f, err := l.Lower()
			if err != nil {
				b.Fatal(err)
			}
			cir.Mem2Reg(f)
			funcs = append(funcs, f)
		}
		_, counts := cir.ClassifyLoops(funcs)
		if counts.MultiReads != loopdb.Table2["grep"].MultiReads {
			b.Fatalf("grep candidates = %d", counts.MultiReads)
		}
	}
}

// BenchmarkTable3Synthesis synthesises a cross-section of the corpus with
// the full vocabulary — the Table 3 workload in miniature.
func BenchmarkTable3Synthesis(b *testing.B) {
	names := map[string]bool{
		"bash/skip_ws_guarded": true, // Figure 1: ZFP..F
		"ssh/find_comma":       true, // N,F
		"wget/find_frag":       true, // C#F
		"git/skip_digits":      true, // P<meta>F
		"tar/to_end":           true, // EF
	}
	var loops []loopdb.Loop
	for _, l := range loopdb.Corpus() {
		if names[l.Name] {
			loops = append(loops, l)
		}
	}
	if len(loops) != len(names) {
		b.Fatalf("found %d of %d named corpus loops", len(loops), len(names))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		records := harness.SynthesizeCorpus(loops, cegis.Options{Timeout: time.Minute}, nil)
		for _, r := range records {
			if !r.Found {
				b.Fatalf("%s: not synthesised", r.Loop.Name)
			}
		}
	}
}

// BenchmarkFigure2Deepening measures the iterative-deepening search reaching
// a size-7 program (the Figure 2 x-axis sweep).
func BenchmarkFigure2Deepening(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := lowerBench(b, figure1Loop)
		b.StartTimer()
		out, err := cegis.Synthesize(f, cegis.Options{Timeout: time.Minute})
		if err != nil || !out.Found || out.Program.EncodedSize() != 7 {
			b.Fatalf("out=%+v err=%v", out, err)
		}
	}
}

// BenchmarkTable4VocabOpt runs the Gaussian-process vocabulary optimisation
// over a reduced corpus — the §4.2.3 machinery end to end.
func BenchmarkTable4VocabOpt(b *testing.B) {
	var loops []loopdb.Loop
	for _, l := range loopdb.Corpus() {
		if l.Program == "ssh" || l.Program == "wget" {
			loops = append(loops, l)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		objective := func(bits []bool) float64 {
			v := harness.VocabularyFromBits(bits)
			if !v.Contains(vocab.OpReturn) {
				return 0
			}
			return float64(harness.CountSynthesized(loops, cegis.Options{
				Vocabulary:  v,
				Timeout:     200 * time.Millisecond,
				MaxProgSize: 7,
			}))
		}
		_, bestY, _ := gp.Maximize(objective, 13, gp.Options{Evaluations: 8, Seed: int64(i)})
		if bestY < 1 {
			b.Fatalf("optimiser found nothing: %v", bestY)
		}
	}
}

// BenchmarkFigure3SymbolicLength compares vanilla.KLEE and str.KLEE on one
// loop at a moderate symbolic length (the Figure 3 crossover region).
func BenchmarkFigure3SymbolicLength(b *testing.B) {
	prog, err := vocab.Decode("ZFP \t\x00F")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("vanilla", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			f := lowerBench(b, figure1Loop)
			b.StartTimer()
			m := kleebench.Vanilla(f, 8, time.Minute)
			if m.TimedOut || m.Tests == 0 {
				b.Fatalf("vanilla run failed: %+v", m)
			}
		}
	})
	b.Run("str", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := kleebench.Str(prog, 8, time.Minute)
			if m.TimedOut || m.Tests == 0 {
				b.Fatalf("str run failed: %+v", m)
			}
		}
	})
}

// BenchmarkSolverCacheOn/Off run the vanilla.KLEE configuration on the
// Figure 1 loop with the query-cache chain (independence slicing,
// counterexample cache, incremental solver) on and off. The custom metrics
// make the cache's effect hardware-independent: SAT conflicts per op is the
// search effort the cache saved, hit rate is how often a query never reached
// the SAT core at all.
func benchmarkSolverCache(b *testing.B, cfg kleebench.Config) {
	var conflicts, queries int64
	var hits, groups int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := lowerBench(b, figure1Loop)
		b.StartTimer()
		m := kleebench.VanillaWith(f, 8, time.Minute, cfg)
		if m.TimedOut || m.Tests == 0 {
			b.Fatalf("vanilla run failed: %+v", m)
		}
		conflicts += m.Conflicts
		queries += int64(m.SolverQueries)
		hits += m.Cache.Hits()
		groups += m.Cache.Hits() + m.Cache.Misses
	}
	b.ReportMetric(float64(conflicts)/float64(b.N), "conflicts/op")
	b.ReportMetric(float64(queries)/float64(b.N), "queries/op")
	if groups > 0 {
		b.ReportMetric(float64(hits)/float64(groups), "hit-rate")
	}
}

func BenchmarkSolverCacheOn(b *testing.B)  { benchmarkSolverCache(b, kleebench.Config{QCache: true}) }
func BenchmarkSolverCacheOff(b *testing.B) { benchmarkSolverCache(b, kleebench.Config{QCache: false}) }

// BenchmarkFigure4Speedup reports the str-over-vanilla speedup for one loop
// at a fixed length as a custom metric (the Figure 4 quantity).
func BenchmarkFigure4Speedup(b *testing.B) {
	prog, _ := vocab.Decode("ZFP \t\x00F")
	var speedup float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := lowerBench(b, figure1Loop)
		b.StartTimer()
		v := kleebench.Vanilla(f, 9, time.Minute)
		s := kleebench.Str(prog, 9, time.Minute)
		speedup = kleebench.Speedup(v, s)
	}
	b.ReportMetric(speedup, "x-speedup")
}

// BenchmarkFigure5Native times the original loop against its compiled
// summary on the §4.4 workload.
func BenchmarkFigure5Native(b *testing.B) {
	var loop loopdb.Loop
	for _, l := range loopdb.Corpus() {
		if l.Name == "bash/skip_ws_pair" {
			loop = l
		}
	}
	prog, _ := vocab.Decode(loop.WantProgram)
	compiled := vocab.CompileGo(prog)
	workload := nativeopt.Workload()
	b.Run("original-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, w := range workload {
				loop.Ref(w)
			}
		}
	})
	b.Run("summary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, w := range workload {
				compiled(w)
			}
		}
	})
}

// BenchmarkMemorylessVerification times the §3.3 bounded verification.
func BenchmarkMemorylessVerification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := lowerBench(b, figure1Loop)
		b.StartTimer()
		r := memoryless.Verify(f, 3)
		if !r.Memoryless {
			b.Fatalf("verification failed: %s", r.Reason)
		}
	}
}

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblationGuardedOffsets compares the guarded-offset symbolic
// gadget semantics against a naive dense encoding in which the result offset
// is one nested-ite term. Both sides perform the same job — the test
// generation / verification case split: one solver query per possible result
// offset ("can the summary return s+j?").
func BenchmarkAblationGuardedOffsets(b *testing.B) {
	prog, _ := vocab.Decode("P \t\x00F")
	const maxLen = 6
	tin := bv.NewInterner()
	inSet := func(c *bv.Term) *bv.Bool {
		return tin.BOr2(tin.Eq(c, tin.Byte(' ')), tin.Eq(c, tin.Byte('\t')))
	}
	b.Run("guarded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := strsolver.New(tin, "s", maxLen)
			outcomes := vocab.RunSymbolic(vocab.Symbolize(tin, prog), s)
			sats := 0
			for _, o := range outcomes {
				if st, _ := bv.CheckSat(nil, 0, o.Guard); st == sat.Sat {
					sats++
				}
			}
			if sats != maxLen+1 {
				b.Fatalf("guarded: %d satisfiable outcomes", sats)
			}
		}
	})
	b.Run("naive-ite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := strsolver.New(tin, "s", maxLen)
			// Dense encoding: the span as one nested-ite term.
			span := tin.Int32(maxLen)
			for j := maxLen - 1; j >= 0; j-- {
				stop := tin.BOr2(tin.Eq(s.At(j), tin.Byte(0)), tin.BNot1(inSet(s.At(j))))
				prefixOK := bv.True
				for k := 0; k < j; k++ {
					prefixOK = tin.BAnd2(prefixOK, tin.BAnd2(inSet(s.At(k)), tin.Ne(s.At(k), tin.Byte(0))))
				}
				span = tin.Ite(tin.BAnd2(prefixOK, stop), tin.Int32(int64(j)), span)
			}
			sats := 0
			for j := 0; j <= maxLen; j++ {
				if st, _ := bv.CheckSat(nil, 0, tin.Eq(span, tin.Int32(int64(j)))); st == sat.Sat {
					sats++
				}
			}
			if sats != maxLen+1 {
				b.Fatalf("naive: %d satisfiable offsets", sats)
			}
		}
	})
}

// BenchmarkAblationMetaChars synthesises a three-character whitespace skip
// with and without meta-characters: the class collapses to one member with
// them, and must be spelled out without them (§2.2's claim: slower, not
// impossible).
func BenchmarkAblationMetaChars(b *testing.B) {
	src := `
char *skip(char *s) {
  while (*s == ' ' || *s == '\t' || *s == '\n')
    s++;
  return s;
}`
	run := func(b *testing.B, disable bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			f := lowerBench(b, src)
			b.StartTimer()
			out, err := cegis.Synthesize(f, cegis.Options{
				Timeout:          time.Minute,
				DisableMetaChars: disable,
			})
			if err != nil || !out.Found {
				b.Fatalf("out=%+v err=%v", out, err)
			}
		}
	}
	b.Run("with-meta", func(b *testing.B) { run(b, false) })
	b.Run("without-meta", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationPruning measures candidate canonicalisation on and off.
func BenchmarkAblationPruning(b *testing.B) {
	src := `
char *find(char *s) {
  while (*s && *s != '=')
    s++;
  return s;
}`
	run := func(b *testing.B, disable bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			f := lowerBench(b, src)
			b.StartTimer()
			out, err := cegis.Synthesize(f, cegis.Options{
				Timeout:        time.Minute,
				DisablePruning: disable,
			})
			if err != nil || !out.Found {
				b.Fatalf("out=%+v err=%v", out, err)
			}
		}
	}
	b.Run("pruned", func(b *testing.B) { run(b, false) })
	b.Run("unpruned", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationCexReuse measures counterexample reuse across program
// sizes during iterative deepening.
func BenchmarkAblationCexReuse(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			f := lowerBench(b, figure1Loop)
			b.StartTimer()
			out, err := cegis.Synthesize(f, cegis.Options{
				Timeout:         time.Minute,
				DisableCexReuse: disable,
			})
			if err != nil || !out.Found {
				b.Fatalf("out=%+v err=%v", out, err)
			}
		}
	}
	b.Run("reused", func(b *testing.B) { run(b, false) })
	b.Run("fresh-per-size", func(b *testing.B) { run(b, true) })
}
